package swap

import (
	"fmt"
	"math"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/metrics"
	"cswap/internal/pcie"
	"cswap/internal/profiler"
	"cswap/internal/sim"
	"cswap/internal/stats"
	"cswap/internal/trace"
)

// Options control a simulated iteration.
type Options struct {
	// Seed drives the jitter stream; runs are deterministic per seed.
	Seed int64
	// Jitter is the log-normal σ applied to every job duration (kernel
	// timing and DMA variance); 0 disables noise entirely.
	Jitter float64
	// Trace, when non-nil, records every job as a span (Figure 2-style
	// execution-flow timelines).
	Trace *trace.Timeline
	// Interference is the fraction of each compression kernel's duration
	// charged to the compute stream: software (de)compression occupies
	// SMs the DNN kernels would otherwise use — the contention cDMA's
	// dedicated hardware units exist to avoid. 0 disables the effect;
	// DefaultInterference is the calibrated default.
	Interference float64
	// PipelinedCodec is an ablation switch: instead of the paper's
	// one-tensor-at-a-time swap pipeline (Fig. 2(b): kernel in-line with
	// its DMA), compression kernels run on their own stream and overlap
	// *other* tensors' transfers — double-buffered swapping. It mostly
	// benefits blind always-compress schemes, whose kernel time then
	// hides behind the saturated link.
	PipelinedCodec bool
	// EagerPrefetch issues every prefetch as soon as the backward pass
	// begins instead of one region ahead of its consumer; the h2d engine
	// still drains them in order, so deep prefetching can start earlier
	// when backward compute stalls. It is never slower than the default
	// one-ahead policy.
	EagerPrefetch bool
	// Observer, when non-nil, receives the iteration's metrics: per-stream
	// busy time, exposed-stall histograms, and per-codec decision counts.
	// When Trace is nil and the observer carries a timeline, spans are
	// recorded there. Nil costs nothing.
	Observer *metrics.Observer
}

// DefaultInterference is the default SM-contention charge for software
// compression kernels (fraction of kernel time added to the compute
// stream).
const DefaultInterference = 0.10

// DefaultOptions returns the standard simulation configuration used by the
// experiments: 1 % duration jitter and the default kernel interference.
func DefaultOptions(seed int64) Options {
	return Options{Seed: seed, Jitter: 0.01, Interference: DefaultInterference}
}

// TensorTiming reports the simulated swap activity of one tensor.
type TensorTiming struct {
	Name string
	// OffloadDur and PrefetchDur are the DMA-engine occupancy times.
	OffloadDur, PrefetchDur float64
	// CompDur and DecompDur are the kernel-stream occupancy times.
	CompDur, DecompDur float64
	// ExposedF and ExposedB are the stalls this tensor's swap inflicted on
	// the forward and backward passes (the measured Eq. 1/2 quantities).
	ExposedF, ExposedB float64
}

// Result summarises one simulated training iteration.
type Result struct {
	Framework     string
	IterationTime float64
	ForwardTime   float64
	// ComputeBusy is the compute-stream occupancy (pure DNN math).
	ComputeBusy float64
	// KernelBusy is the compression-stream occupancy.
	KernelBusy float64
	// D2HBusy and H2DBusy are DMA occupancies.
	D2HBusy, H2DBusy float64
	// SwapExposed is the total un-hidden swap latency (Σ exposed stalls).
	SwapExposed float64
	// Throughput is training samples per second for the model's batch.
	Throughput float64
	Tensors    []TensorTiming
}

// Simulate runs one training iteration of the model under the plan on the
// device, returning emergent timing. Layer times come from the profile
// (mean values) with per-job jitter; transfers run on directional DMA
// engines at the link's effective bandwidth; compression kernels occupy a
// dedicated stream.
//
// Synchronisation follows the vDNN/Fig. 2 discipline: the offload of tensor
// k overlaps the compute between tensor k and tensor k+1, and compute may
// not run further ahead (the freed memory is needed); symmetrically, the
// prefetch of tensor k overlaps the backward compute of that same span and
// must complete before the backward pass crosses tensor k's layer.
func Simulate(m *dnn.Model, d *gpu.Device, np *profiler.NetworkProfile, plan *Plan, opt Options) (res *Result, err error) {
	if err := plan.Validate(np); err != nil {
		return nil, err
	}
	if len(np.Forward) != len(m.Layers) {
		return nil, fmt.Errorf("swap: profile has %d layers, model %d", len(np.Forward), len(m.Layers))
	}
	// The event engine panics on structurally impossible inputs (NaN or
	// negative durations from a corrupted profile); surface those as
	// errors — a bad profile must not crash the caller.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("swap: invalid simulation input: %v", r)
		}
	}()
	// The observer's timeline doubles as the span target when no explicit
	// Trace is configured. Within Simulate the engine is single-threaded,
	// so direct appends are safe; inverted spans would be simulator bugs,
	// which is exactly what Timeline.Add's panic (converted to an error by
	// the recover above) is reserved for.
	if opt.Trace == nil && opt.Observer != nil {
		opt.Trace = opt.Observer.Trace
	}
	rng := stats.NewRNG(opt.Seed)
	jit := func(v float64) float64 {
		if opt.Jitter <= 0 || v == 0 {
			return v
		}
		return stats.LogNormalJitter(rng, v, opt.Jitter)
	}
	// span wraps a job-completion callback with optional trace recording.
	span := func(stream, label string, inner func(start, end float64)) func(float64, float64) {
		if opt.Trace == nil {
			return inner
		}
		return func(start, end float64) {
			opt.Trace.Add(stream, label, start, end)
			if inner != nil {
				inner(start, end)
			}
		}
	}

	eng := sim.NewEngine()
	computeRes := sim.NewResource(eng, "compute")
	d2hRes := sim.NewResource(eng, "d2h")
	h2dRes := sim.NewResource(eng, "h2d")
	var kernelRes *sim.Resource
	if opt.PipelinedCodec {
		kernelRes = sim.NewResource(eng, "kernel")
	}

	k := len(np.Tensors)
	// regions[r] = layer indices executed between tensor r−1 and tensor r
	// (region k is the tail after the last tensor).
	regions := make([][]int, k+1)
	prev := -1
	for r := 0; r < k; r++ {
		for i := prev + 1; i <= np.Tensors[r].LayerIdx; i++ {
			regions[r] = append(regions[r], i)
		}
		prev = np.Tensors[r].LayerIdx
	}
	for i := prev + 1; i < len(m.Layers); i++ {
		regions[k] = append(regions[k], i)
	}

	res = &Result{Framework: plan.Framework, Tensors: make([]TensorTiming, k)}
	for i := range res.Tensors {
		res.Tensors[i].Name = np.Tensors[i].Name
	}

	fwdRegionDone := make([]float64, k+1)
	bwdRegionDone := make([]float64, k+1)
	offloadDone := make([]float64, k)
	prefetchDone := make([]float64, k)

	transferTime := func(t profiler.TensorProfile, tp TensorPlan, dir pcie.Direction) float64 {
		bytes := int64(float64(t.Bytes) * tp.TransferRatio)
		base := d.Link.TransferTime(bytes, dir)
		if dir == pcie.DeviceToHost {
			return base + tp.HostC
		}
		return base + tp.HostDC
	}

	// --- Forward pass -----------------------------------------------------

	fwdBarrier := sim.NewBarrier(eng) // all compute regions + all offloads
	var startForwardRegion func(r int)
	fwdDeps := make([]int, k+2)
	for r := 1; r <= k; r++ {
		fwdDeps[r] = 1 // compute of region r−1
		if r >= 2 {
			fwdDeps[r]++ // offload of tensor r−2
		}
	}
	resolveFwd := func(r int) {
		if r > k {
			return
		}
		fwdDeps[r]--
		if fwdDeps[r] == 0 {
			startForwardRegion(r)
		}
	}
	// issueOffload submits tensor t's swap-out as one serial pipeline job:
	// compression kernel (when planned) immediately followed by the DMA
	// transfer, per the Figure 2(b) flow — only one tensor swaps at a
	// time, so a slow codec directly throttles the swap-out path.
	issueOffload := func(t int) {
		tp := plan.Tensors[t]
		name := np.Tensors[t].Name
		if tp.Skip {
			// Kept resident: the swap dependency is vacuously satisfied.
			eng.Schedule(0, func() {
				offloadDone[t] = eng.Now()
				fwdBarrier.Done()
				resolveFwd(t + 2)
			})
			return
		}
		var c float64
		if tp.Compress {
			c = jit(tp.TimeC)
			res.Tensors[t].CompDur = c
			if opt.Interference > 0 {
				computeRes.Submit(opt.Interference*c, span("compute", "i:"+name, nil))
			}
		}
		dur := jit(transferTime(np.Tensors[t], tp, pcie.DeviceToHost))
		res.Tensors[t].OffloadDur = dur
		finish := func(_, end float64) {
			offloadDone[t] = end
			fwdBarrier.Done()
			resolveFwd(t + 2)
		}
		if opt.PipelinedCodec && c > 0 {
			// Ablation: the kernel runs on its own stream and only this
			// tensor's DMA waits for it; other transfers proceed.
			kernelRes.Submit(c, span("kernel", "C:"+name, func(_, _ float64) {
				d2hRes.Submit(dur, span("d2h", "o:"+name, finish))
			}))
			return
		}
		d2hRes.Submit(c+dur, func(start, end float64) {
			if opt.Trace != nil {
				if c > 0 {
					opt.Trace.Add("d2h", "C:"+name, start, start+c)
				}
				opt.Trace.Add("d2h", "o:"+name, start+c, end)
			}
			finish(start, end)
		})
	}
	startForwardRegion = func(r int) {
		onComputeDone := func(_, end float64) {
			fwdRegionDone[r] = end
			fwdBarrier.Done()
			if r < k {
				issueOffload(r)
			}
			resolveFwd(r + 1)
		}
		if len(regions[r]) == 0 {
			eng.Schedule(0, func() { onComputeDone(eng.Now(), eng.Now()) })
			return
		}
		for j, li := range regions[r] {
			dur := jit(np.Forward[li])
			var done func(float64, float64)
			if j == len(regions[r])-1 {
				done = onComputeDone
			}
			computeRes.Submit(dur, span("compute", "F:"+m.Layers[li].Name, done))
		}
	}

	// --- Backward pass ----------------------------------------------------

	var startBackwardRegion func(r int)
	bwdDeps := make([]int, k+1)
	for r := 0; r < k; r++ {
		bwdDeps[r] = 2 // compute of bregion r+1, prefetch of tensor r
	}
	iterationEnd := sim.NewBarrier(eng)
	iterationEnd.Add() // bregion 0 compute
	resolveBwd := func(r int) {
		if r < 0 {
			return
		}
		bwdDeps[r]--
		if bwdDeps[r] == 0 {
			startBackwardRegion(r)
		}
	}
	// issuePrefetch mirrors issueOffload: the swap-in pipeline job is the
	// DMA transfer immediately followed by the decompression kernel.
	issuePrefetch := func(t int) {
		tp := plan.Tensors[t]
		name := np.Tensors[t].Name
		if tp.Skip {
			eng.Schedule(0, func() {
				prefetchDone[t] = eng.Now()
				resolveBwd(t)
			})
			return
		}
		var dc float64
		if tp.Compress {
			dc = jit(tp.TimeDC)
			res.Tensors[t].DecompDur = dc
			if opt.Interference > 0 {
				computeRes.Submit(opt.Interference*dc, span("compute", "i:"+name, nil))
			}
		}
		dur := jit(transferTime(np.Tensors[t], tp, pcie.HostToDevice))
		res.Tensors[t].PrefetchDur = dur
		finish := func(_, end float64) {
			prefetchDone[t] = end
			resolveBwd(t)
		}
		if opt.PipelinedCodec && dc > 0 {
			h2dRes.Submit(dur, span("h2d", "p:"+name, func(_, _ float64) {
				kernelRes.Submit(dc, span("kernel", "D:"+name, finish))
			}))
			return
		}
		h2dRes.Submit(dur+dc, func(start, end float64) {
			if opt.Trace != nil {
				opt.Trace.Add("h2d", "p:"+name, start, start+dur)
				if dc > 0 {
					opt.Trace.Add("h2d", "D:"+name, start+dur, end)
				}
			}
			finish(start, end)
		})
	}
	startBackwardRegion = func(r int) {
		if opt.EagerPrefetch && r == k {
			// Queue every prefetch immediately; the serial h2d engine
			// preserves reverse-tensor order.
			for t := k - 1; t >= 0; t-- {
				issuePrefetch(t)
			}
		} else if !opt.EagerPrefetch && r-1 >= 0 {
			issuePrefetch(r - 1)
		}
		onComputeDone := func(_, end float64) {
			bwdRegionDone[r] = end
			if r == 0 {
				iterationEnd.Done()
			} else {
				resolveBwd(r - 1)
			}
		}
		if len(regions[r]) == 0 {
			eng.Schedule(0, func() { onComputeDone(eng.Now(), eng.Now()) })
			return
		}
		for j := len(regions[r]) - 1; j >= 0; j-- {
			dur := jit(np.Backward[regions[r][j]])
			var done func(float64, float64)
			if j == 0 {
				done = onComputeDone
			}
			computeRes.Submit(dur, span("compute", "B:"+m.Layers[regions[r][j]].Name, done))
		}
	}

	// Wire forward completion to backward start.
	for r := 0; r <= k; r++ {
		fwdBarrier.Add() // compute region r
	}
	for t := 0; t < k; t++ {
		fwdBarrier.Add() // offload t
	}
	fwdBarrier.Arm(func() {
		res.ForwardTime = eng.Now()
		startBackwardRegion(k)
	})
	var finalTime float64
	iterationEnd.Arm(func() { finalTime = eng.Now() })

	startForwardRegion(0)
	eng.Run()

	res.IterationTime = finalTime
	res.ComputeBusy = computeRes.BusyTotal()
	res.D2HBusy = d2hRes.BusyTotal()
	res.H2DBusy = h2dRes.BusyTotal()
	for t := 0; t < k; t++ {
		res.KernelBusy += res.Tensors[t].CompDur + res.Tensors[t].DecompDur
		ef := math.Max(0, offloadDone[t]-fwdRegionDone[t+1])
		eb := math.Max(0, prefetchDone[t]-bwdRegionDone[t+1])
		res.Tensors[t].ExposedF = ef
		res.Tensors[t].ExposedB = eb
		res.SwapExposed += ef + eb
	}
	if res.IterationTime > 0 {
		res.Throughput = float64(m.Batch) / res.IterationTime
	}
	res.record(opt.Observer, plan)
	return res, nil
}

// record publishes the iteration's emergent timing into the observer's
// registry: stream occupancies, exposed-stall distributions, and the
// plan's per-codec decision mix.
func (r *Result) record(o *metrics.Observer, plan *Plan) {
	reg := o.Reg()
	if reg == nil {
		return
	}
	reg.Counter("sim_iterations_total").Inc()
	reg.Counter("sim_stream_busy_seconds_total", metrics.L("stream", "compute")).Add(r.ComputeBusy)
	reg.Counter("sim_stream_busy_seconds_total", metrics.L("stream", "kernel")).Add(r.KernelBusy)
	reg.Counter("sim_stream_busy_seconds_total", metrics.L("stream", "d2h")).Add(r.D2HBusy)
	reg.Counter("sim_stream_busy_seconds_total", metrics.L("stream", "h2d")).Add(r.H2DBusy)
	reg.Counter("sim_exposed_seconds_total").Add(r.SwapExposed)
	reg.Histogram("sim_iteration_seconds").Observe(r.IterationTime)
	hf := reg.Histogram("sim_exposed_stall_seconds", metrics.L("pass", "forward"))
	hb := reg.Histogram("sim_exposed_stall_seconds", metrics.L("pass", "backward"))
	for i := range r.Tensors {
		hf.Observe(r.Tensors[i].ExposedF)
		hb.Observe(r.Tensors[i].ExposedB)
	}
	for _, tp := range plan.Tensors {
		switch {
		case tp.Skip:
			reg.Counter("sim_decisions_total", metrics.L("action", "skip"), metrics.L("codec", "none")).Inc()
		case tp.Compress:
			reg.Counter("sim_decisions_total", metrics.L("action", "compress"), metrics.L("codec", tp.Alg.String())).Inc()
		default:
			reg.Counter("sim_decisions_total", metrics.L("action", "raw"), metrics.L("codec", "none")).Inc()
		}
	}
	o.Emit("sim.iteration",
		"framework", r.Framework,
		"iteration_seconds", fmt.Sprintf("%g", r.IterationTime),
		"exposed_seconds", fmt.Sprintf("%g", r.SwapExposed))
}
