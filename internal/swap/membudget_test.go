package swap

import (
	"testing"

	"cswap/internal/compress"
)

func TestSkipTensorsHaveNoSwapActivity(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 25)
	plan := VDNN{}.Plan(np, d)
	for i := range plan.Tensors {
		plan.Tensors[i].Skip = true
	}
	r, err := Simulate(m, d, np, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.D2HBusy != 0 || r.H2DBusy != 0 {
		t.Fatalf("skipped plan still moved data: d2h=%v h2d=%v", r.D2HBusy, r.H2DBusy)
	}
	if r.SwapExposed != 0 {
		t.Fatalf("skipped plan exposed %v", r.SwapExposed)
	}
	// Iteration collapses to pure compute (within epsilon).
	if diff := r.IterationTime - r.ComputeBusy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("all-resident iteration %v != compute %v", r.IterationTime, r.ComputeBusy)
	}
}

func TestValidateRejectsSkipAndCompress(t *testing.T) {
	_, d, np := testSetup(t, "AlexNet", 0)
	plan := Static{}.Plan(np, d)
	plan.Tensors[0].Skip = true
	if err := plan.Validate(np); err == nil {
		t.Fatal("skip+compress plan accepted")
	}
}

func TestPlanPeakBytes(t *testing.T) {
	_, d, np := testSetup(t, "AlexNet", 0)
	plan := VDNN{}.Plan(np, d)
	// All swapped: peak = two largest tensors.
	var first, second int64
	for _, tp := range np.Tensors {
		if tp.Bytes > first {
			first, second = tp.Bytes, first
		} else if tp.Bytes > second {
			second = tp.Bytes
		}
	}
	if got := PlanPeakBytes(np, plan); got != first+second {
		t.Fatalf("peak %d, want %d", got, first+second)
	}
	// All resident: peak = total.
	var total int64
	for i := range plan.Tensors {
		plan.Tensors[i].Skip = true
		total += np.Tensors[i].Bytes
	}
	if got := PlanPeakBytes(np, plan); got != total {
		t.Fatalf("all-resident peak %d, want %d", got, total)
	}
}

func TestMemoryAwareBudgetSpectrum(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 25)
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tp := range np.Tensors {
		total += tp.Bytes
	}
	baseline, err := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The base plan's in-flight minimum: below it no tensor can be
	// retired without exceeding the budget anyway.
	basePeak := PlanPeakBytes(np, VDNN{}.Plan(np, d))

	prevTime := -1.0
	prevSkipped := 1 << 30
	for _, budget := range []int64{0, total / 4, total / 2, total * 2} {
		ma := MemoryAware{Inner: VDNN{}, BudgetBytes: budget, Model: m}
		plan := ma.Plan(np, d)
		if err := plan.Validate(np); err != nil {
			t.Fatal(err)
		}
		if peak := PlanPeakBytes(np, plan); budget > basePeak && peak > budget {
			t.Fatalf("budget %d: plan needs %d", budget, peak)
		}
		r, err := Simulate(m, d, np, plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if prevTime >= 0 {
			// More budget ⇒ more tensors resident ⇒ never slower.
			if r.IterationTime > prevTime+1e-9 {
				t.Fatalf("budget %d slower (%v) than smaller budget (%v)",
					budget, r.IterationTime, prevTime)
			}
			_ = prevSkipped
		}
		prevTime = r.IterationTime
		prevSkipped = plan.SkippedCount()
	}

	// Huge budget keeps everything resident and beats the swap-everything
	// baseline outright.
	ma := MemoryAware{Inner: VDNN{}, BudgetBytes: total * 2, Model: m}
	plan := ma.Plan(np, d)
	if plan.SkippedCount() != len(np.Tensors) {
		t.Fatalf("huge budget kept %d of %d resident", plan.SkippedCount(), len(np.Tensors))
	}
	r, err := Simulate(m, d, np, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.IterationTime >= baseline.IterationTime {
		t.Fatalf("all-resident %v not faster than swap-everything %v",
			r.IterationTime, baseline.IterationTime)
	}
	// Zero budget leaves the inner plan untouched.
	zero := MemoryAware{Inner: VDNN{}, BudgetBytes: 0, Model: m}.Plan(np, d)
	if zero.SkippedCount() != 0 {
		t.Fatal("zero budget skipped tensors")
	}
}

func TestMemoryAwareName(t *testing.T) {
	ma := MemoryAware{Inner: VDNN{}}
	if ma.Name() != "vDNN+mem" {
		t.Fatalf("Name = %q", ma.Name())
	}
}

func TestMemoryAwareWrapsCSWAP(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 45)
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	inner := CSWAP{Predictor: devicePredictor{d: d, launch: chooseLaunch()}, Launch: chooseLaunch()}
	var total int64
	for _, tp := range np.Tensors {
		total += tp.Bytes
	}
	ma := MemoryAware{Inner: inner, BudgetBytes: total / 2, Model: m}
	plan := ma.Plan(np, d)
	if err := plan.Validate(np); err != nil {
		t.Fatal(err)
	}
	if plan.SkippedCount() == 0 {
		t.Fatal("half-total budget should keep something resident")
	}
	// Skipped tensors must not carry codec state.
	for _, tp := range plan.Tensors {
		if tp.Skip && (tp.Compress || tp.TimeC != 0) {
			t.Fatal("skipped tensor still has codec plan")
		}
	}
	// The budgeted CSWAP plan beats plain CSWAP.
	rBudget, err := Simulate(m, d, np, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rPlain, err := Simulate(m, d, np, inner.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rBudget.IterationTime >= rPlain.IterationTime {
		t.Fatalf("budgeted %v not faster than plain %v",
			rBudget.IterationTime, rPlain.IterationTime)
	}
}

func chooseLaunch() compress.Launch { return compress.Launch{Grid: 199, Block: 64} }
