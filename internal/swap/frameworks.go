package swap

import (
	"cswap/internal/compress"
	"cswap/internal/costmodel"
	"cswap/internal/gpu"
	"cswap/internal/metrics"
	"cswap/internal/profiler"
)

// Framework produces an iteration plan from a network profile.
type Framework interface {
	// Name is the evaluation label (vDNN, vDNN++, SC, CSWAP, Orac).
	Name() string
	// Plan builds the per-tensor decisions for the current epoch's
	// profile on the given device.
	Plan(np *profiler.NetworkProfile, d *gpu.Device) *Plan
}

// TimePredictor estimates (de)compression kernel times; satisfied by
// regress.TimePredictor. CSWAP consults it, never the true kernel model —
// prediction error is part of the system being reproduced.
type TimePredictor interface {
	Predict(alg compress.Algorithm, sizeBytes int64, sparsity float64) (timeC, timeDC float64, err error)
}

// ---------------------------------------------------------------------------

// VDNN is the baseline swap-everything framework (Rhu et al.): tensors
// cross PCIe raw, overlap with compute is the only latency-hiding tool.
type VDNN struct{}

// Name implements Framework.
func (VDNN) Name() string { return "vDNN" }

// Plan implements Framework.
func (VDNN) Plan(np *profiler.NetworkProfile, _ *gpu.Device) *Plan {
	p := &Plan{Framework: "vDNN", Tensors: make([]TensorPlan, len(np.Tensors))}
	for i := range p.Tensors {
		p.Tensors[i] = TensorPlan{TransferRatio: 1}
	}
	return p
}

// ---------------------------------------------------------------------------

// VDNNPP models vDNN++'s host-side compression: tensors still cross PCIe in
// full, but when sparsity exceeds 60 % the host compresses them with 64 CPU
// threads after the offload (and decompresses before the prefetch). The
// pinned staging buffer is recycled, so host codec time serialises onto the
// DMA engines. It reduces pinned-host-memory footprint, not transfer time —
// which is why the paper measures it well below plain vDNN in throughput.
type VDNNPP struct {
	// HostThroughput is the 64-thread CPU codec throughput in bytes/s
	// (default 2.5 GB/s).
	HostThroughput float64
	// SparsityThreshold gates host compression (default 0.60 per
	// Section V: "when the sparsity is more than 60%").
	SparsityThreshold float64
}

// Name implements Framework.
func (VDNNPP) Name() string { return "vDNN++" }

// Plan implements Framework.
func (v VDNNPP) Plan(np *profiler.NetworkProfile, _ *gpu.Device) *Plan {
	hostBW := v.HostThroughput
	if hostBW <= 0 {
		hostBW = 2.5e9
	}
	thresh := v.SparsityThreshold
	if thresh <= 0 {
		thresh = 0.60
	}
	p := &Plan{Framework: "vDNN++", Tensors: make([]TensorPlan, len(np.Tensors))}
	for i, t := range np.Tensors {
		tp := TensorPlan{TransferRatio: 1}
		if t.Sparsity > thresh {
			hostTime := float64(t.Bytes) / hostBW
			tp.HostC = hostTime
			tp.HostDC = hostTime
		}
		p.Tensors[i] = tp
	}
	return p
}

// ---------------------------------------------------------------------------

// Static is the SC scheme: the software replica of cDMA that compresses
// *every* swappable tensor with ZVC on the GPU, regardless of its sparsity
// or size, at an untuned (expert-default) launch geometry (Section II-C).
type Static struct {
	// Launch overrides the kernel geometry; zero value uses the device's
	// expert default, mirroring cDMA's fixed hardware configuration.
	Launch compress.Launch
}

// Name implements Framework.
func (Static) Name() string { return "SC" }

// Plan implements Framework.
func (s Static) Plan(np *profiler.NetworkProfile, d *gpu.Device) *Plan {
	launch := s.Launch
	if launch.Grid == 0 {
		launch = d.DefaultLaunch()
	}
	p := &Plan{Framework: "SC", Tensors: make([]TensorPlan, len(np.Tensors))}
	for i, t := range np.Tensors {
		c, dc := d.CompressionTime(gpu.KernelParams{
			Alg: compress.ZVC, SizeBytes: t.Bytes, Sparsity: t.Sparsity, Launch: launch,
		})
		p.Tensors[i] = TensorPlan{
			Compress:      true,
			Alg:           compress.ZVC,
			TimeC:         c,
			TimeDC:        dc,
			TransferRatio: compress.EstimateRatio(compress.ZVC, t.Sparsity),
		}
	}
	return p
}

// ---------------------------------------------------------------------------

// MinCompressBytes is the advisor's small-tensor gate: the offline time
// model is trained on synthetic tensors of 20 MB and above (Section IV-C),
// so predictions below that size are extrapolations outside the model's
// domain — and such tensors transfer in under 2 ms, where compression never
// pays (the paper's ReLU7/ReLU8 observation).
const MinCompressBytes = 20 << 20

// CSWAP is the paper's framework: the execution advisor evaluates the
// Section IV-B cost model per tensor with *predicted* kernel times (from
// the offline-trained LR model) at the BO-tuned launch geometry, selects
// the best algorithm, and compresses only where T < T′. Actual simulated
// kernel durations come from the device model — so planner mispredictions
// carry through honestly.
type CSWAP struct {
	// Predictor supplies Time_c/Time_dc estimates (required).
	Predictor TimePredictor
	// Launch is the BO-tuned kernel geometry (required).
	Launch compress.Launch
	// Algorithms restricts the candidate codecs (default: the full
	// extended set — codecs the Predictor has no model for are skipped).
	Algorithms []compress.Algorithm
	// Observer, when non-nil, counts every advisor verdict
	// (costmodel_decisions_total by verdict/codec) as Plan runs.
	Observer *metrics.Observer
}

// Name implements Framework.
func (CSWAP) Name() string { return "CSWAP" }

// Plan implements Framework.
func (c CSWAP) Plan(np *profiler.NetworkProfile, d *gpu.Device) *Plan {
	algs := c.Algorithms
	if len(algs) == 0 {
		algs = compress.ExtendedAlgorithms()
	}
	p := &Plan{Framework: "CSWAP", Tensors: make([]TensorPlan, len(np.Tensors))}
	for i, t := range np.Tensors {
		dec, alg, predC, predDC := c.decide(np, i)
		dec.Observe(c.Observer, alg.String())
		tp := TensorPlan{TransferRatio: 1}
		if dec.Compress {
			// Simulate with the true kernel-model durations, not the
			// predictions the decision was made with.
			actualC, actualDC := d.CompressionTime(gpu.KernelParams{
				Alg: alg, SizeBytes: t.Bytes, Sparsity: t.Sparsity, Launch: c.Launch,
			})
			tp = TensorPlan{
				Compress:      true,
				Alg:           alg,
				TimeC:         actualC,
				TimeDC:        actualDC,
				TransferRatio: compress.EstimateRatio(alg, t.Sparsity),
			}
		}
		_ = predC
		_ = predDC
		p.Tensors[i] = tp
	}
	return p
}

// decide runs the execution-advisor logic for tensor i: pick the algorithm
// minimising the Eq. 2 cost, then compare against Eq. 1.
func (c CSWAP) decide(np *profiler.NetworkProfile, i int) (costmodel.Decision, compress.Algorithm, float64, float64) {
	t := np.Tensors[i]
	algs := c.Algorithms
	if len(algs) == 0 {
		algs = compress.ExtendedAlgorithms()
	}
	if t.Bytes < MinCompressBytes {
		base := costmodel.Params{
			SizeBytes: t.Bytes, Sparsity: t.Sparsity,
			BWd2h: np.BWd2h, BWh2d: np.BWh2d,
			HiddenF: t.HiddenF, HiddenB: t.HiddenB,
		}
		return costmodel.Decision{Compress: false, TPrime: costmodel.UncompressedCost(base)}, algs[0], 0, 0
	}
	base := costmodel.Params{
		SizeBytes: t.Bytes,
		Sparsity:  t.Sparsity,
		BWd2h:     np.BWd2h,
		BWh2d:     np.BWh2d,
		HiddenF:   t.HiddenF,
		HiddenB:   t.HiddenB,
	}
	bestAlg := algs[0]
	var best costmodel.Decision
	var bestC, bestDC float64
	first := true
	for _, alg := range algs {
		predC, predDC, err := c.Predictor.Predict(alg, t.Bytes, t.Sparsity)
		if err != nil {
			continue
		}
		params := base
		params.TimeC, params.TimeDC = predC, predDC
		params.Ratio = compress.EstimateRatio(alg, t.Sparsity)
		dec := costmodel.Decide(params)
		if first || dec.T < best.T {
			best, bestAlg, bestC, bestDC = dec, alg, predC, predDC
			first = false
		}
	}
	return best, bestAlg, bestC, bestDC
}

// Decisions exposes the advisor verdicts (used by the Figure 9/11
// experiments): one Decision per tensor plus the chosen algorithm.
func (c CSWAP) Decisions(np *profiler.NetworkProfile) ([]costmodel.Decision, []compress.Algorithm) {
	decs := make([]costmodel.Decision, len(np.Tensors))
	algs := make([]compress.Algorithm, len(np.Tensors))
	for i := range np.Tensors {
		decs[i], algs[i], _, _ = c.decide(np, i)
	}
	return decs, algs
}

// ---------------------------------------------------------------------------

// Orac is the oracle upper bound: the same compression decisions as a
// CSWAP plan but with zero-cost (de)compression kernels — "the GPU is fast
// enough so that the compression and decompression time is effectively
// zero" (Section V). Construct it from a CSWAP instance so both perform the
// same number of compression operations, as the paper observes.
type Orac struct {
	Inner CSWAP
}

// Name implements Framework.
func (Orac) Name() string { return "Orac" }

// Plan implements Framework.
func (o Orac) Plan(np *profiler.NetworkProfile, d *gpu.Device) *Plan {
	p := o.Inner.Plan(np, d)
	p.Framework = "Orac"
	for i := range p.Tensors {
		p.Tensors[i].TimeC = 0
		p.Tensors[i].TimeDC = 0
	}
	return p
}
