package swap

import (
	"math"
	"testing"

	"cswap/internal/metrics"
	"cswap/internal/trace"
)

func TestNewOptionsMatchesDefaults(t *testing.T) {
	if got, want := NewOptions(), DefaultOptions(0); got != want {
		t.Fatalf("NewOptions() = %+v, want %+v", got, want)
	}
	tl := &trace.Timeline{}
	obs := metrics.NewObserver()
	o := NewOptions(WithSeed(7), WithJitter(0.25), WithInterference(0.1),
		WithTrace(tl), WithObserver(obs), WithPipelinedCodec(true),
		WithEagerPrefetch(true), nil)
	if o.Seed != 7 || o.Jitter != 0.25 || o.Interference != 0.1 {
		t.Fatalf("scalar options not applied: %+v", o)
	}
	if o.Trace != tl || o.Observer != obs {
		t.Fatal("pointer options not applied")
	}
	if !o.PipelinedCodec || !o.EagerPrefetch {
		t.Fatalf("ablation toggles not applied: %+v", o)
	}
}

func TestSimulateRecordsStreamBusyTotals(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 0)
	plan := CSWAP{Predictor: fixedPredictor{c: 1e-3, dc: 1e-3}, Launch: d.DefaultLaunch()}.Plan(np, d)

	obs := metrics.NewObserver()
	res, err := Simulate(m, d, np, plan, NewOptions(WithSeed(1), WithObserver(obs)))
	if err != nil {
		t.Fatal(err)
	}

	snap := obs.Metrics.Snapshot()
	if v, ok := snap.Counter("sim_iterations_total"); !ok || v != 1 {
		t.Fatalf("sim_iterations_total = %v, %v", v, ok)
	}
	for _, tc := range []struct {
		stream string
		want   float64
	}{
		{"compute", res.ComputeBusy},
		{"kernel", res.KernelBusy},
		{"d2h", res.D2HBusy},
		{"h2d", res.H2DBusy},
	} {
		v, ok := snap.Counter("sim_stream_busy_seconds_total", metrics.L("stream", tc.stream))
		if !ok || math.Abs(v-tc.want) > 1e-12 {
			t.Fatalf("busy[%s] = %v, want %v (ok=%v)", tc.stream, v, tc.want, ok)
		}
	}
	if v, ok := snap.Counter("sim_exposed_seconds_total"); !ok || math.Abs(v-res.SwapExposed) > 1e-12 {
		t.Fatalf("exposed total = %v, want %v", v, res.SwapExposed)
	}

	// Decision counts cover every planned tensor.
	total := 0.0
	for _, c := range snap.Counters {
		if c.Name == "sim_decisions_total" {
			total += c.Value
		}
	}
	if int(total) != len(plan.Tensors) {
		t.Fatalf("decision counts %v, want %d", total, len(plan.Tensors))
	}
}

func TestSimulateFallsBackToObserverTimeline(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 0)
	plan := VDNN{}.Plan(np, d)

	obs := metrics.NewObserver()
	if _, err := Simulate(m, d, np, plan, NewOptions(WithObserver(obs))); err != nil {
		t.Fatal(err)
	}
	if len(obs.Trace.Streams()) == 0 {
		t.Fatal("observer timeline received no spans")
	}

	// An explicit Trace wins over the observer's timeline.
	tl := &trace.Timeline{}
	obs2 := metrics.NewObserver()
	if _, err := Simulate(m, d, np, plan, NewOptions(WithTrace(tl), WithObserver(obs2))); err != nil {
		t.Fatal(err)
	}
	if len(tl.Streams()) == 0 {
		t.Fatal("explicit timeline received no spans")
	}
	if len(obs2.Trace.Streams()) != 0 {
		t.Fatal("observer timeline must not be used when an explicit Trace is set")
	}
}

func TestCSWAPPlanCountsAdvisorVerdicts(t *testing.T) {
	_, d, np := testSetup(t, "VGG16", 0)
	obs := metrics.NewObserver()
	plan := CSWAP{
		Predictor: fixedPredictor{c: 1e-3, dc: 1e-3},
		Launch:    d.DefaultLaunch(),
		Observer:  obs,
	}.Plan(np, d)

	snap := obs.Metrics.Snapshot()
	total := 0.0
	for _, c := range snap.Counters {
		if c.Name == "costmodel_decisions_total" {
			total += c.Value
		}
	}
	if int(total) != len(np.Tensors) {
		t.Fatalf("decision counter total %v, want one per tensor (%d)", total, len(np.Tensors))
	}
	compressed := 0.0
	for _, c := range snap.Counters {
		if c.Name == "costmodel_decisions_total" && c.Labels["verdict"] == "compress" {
			compressed += c.Value
		}
	}
	if int(compressed) != plan.CompressedCount() {
		t.Fatalf("compress verdicts %v, plan compresses %d", compressed, plan.CompressedCount())
	}
}
