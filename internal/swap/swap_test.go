package swap

import (
	"math"
	"strings"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/profiler"
	"cswap/internal/sparsity"
	"cswap/internal/trace"
)

// fixedPredictor returns constant kernel-time predictions.
type fixedPredictor struct{ c, dc float64 }

func (p fixedPredictor) Predict(compress.Algorithm, int64, float64) (float64, float64, error) {
	return p.c, p.dc, nil
}

func testSetup(t *testing.T, model string, epoch int) (*dnn.Model, *gpu.Device, *profiler.NetworkProfile) {
	t.Helper()
	d := gpu.V100()
	m, err := dnn.BuildConfigured(model, d.Name, dnn.ImageNet)
	if err != nil {
		t.Fatal(err)
	}
	sp := sparsity.ForModel(m, 50, 1)
	np := profiler.Collect(m, d, sp, epoch)
	return m, d, np
}

func TestVDNNPlanStructure(t *testing.T) {
	_, d, np := testSetup(t, "VGG16", 0)
	p := VDNN{}.Plan(np, d)
	if err := p.Validate(np); err != nil {
		t.Fatal(err)
	}
	if p.CompressedCount() != 0 {
		t.Fatal("vDNN must not compress")
	}
	for _, tp := range p.Tensors {
		if tp.TransferRatio != 1 || tp.HostC != 0 {
			t.Fatal("vDNN plan must move raw bytes with no host work")
		}
	}
}

func TestVDNNPPPlanGatesOnSparsity(t *testing.T) {
	_, d, np := testSetup(t, "VGG16", 49)
	p := VDNNPP{}.Plan(np, d)
	if err := p.Validate(np); err != nil {
		t.Fatal(err)
	}
	sawHost, sawRaw := false, false
	for i, tp := range p.Tensors {
		if tp.Compress {
			t.Fatal("vDNN++ never compresses on the GPU")
		}
		if np.Tensors[i].Sparsity > 0.60 {
			if tp.HostC <= 0 || tp.HostDC <= 0 {
				t.Fatalf("tensor %d above threshold lacks host codec time", i)
			}
			sawHost = true
		} else {
			if tp.HostC != 0 {
				t.Fatalf("tensor %d below threshold has host codec time", i)
			}
			sawRaw = true
		}
	}
	if !sawHost || !sawRaw {
		t.Fatalf("expected a mix of host-compressed and raw tensors (host=%v raw=%v)", sawHost, sawRaw)
	}
}

func TestStaticCompressesEverything(t *testing.T) {
	_, d, np := testSetup(t, "VGG16", 0)
	p := Static{}.Plan(np, d)
	if err := p.Validate(np); err != nil {
		t.Fatal(err)
	}
	if p.CompressedCount() != len(np.Tensors) {
		t.Fatalf("SC compressed %d of %d", p.CompressedCount(), len(np.Tensors))
	}
	for _, tp := range p.Tensors {
		if tp.Alg != compress.ZVC {
			t.Fatal("SC replicates cDMA's ZVC")
		}
		if tp.TimeC <= 0 || tp.TimeDC <= 0 {
			t.Fatal("SC kernel times must be positive")
		}
	}
}

func TestCSWAPSelective(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 49)
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	// Realistic predictions: half the device-model time is a usable fake.
	cswap := CSWAP{Predictor: fixedPredictor{c: 0.010, dc: 0.008}, Launch: compress.Launch{Grid: 199, Block: 64}}
	p := cswap.Plan(np, d)
	if err := p.Validate(np); err != nil {
		t.Fatal(err)
	}
	n := p.CompressedCount()
	if n == 0 || n == len(np.Tensors) {
		t.Fatalf("CSWAP at epoch 49 should be selective, compressed %d/%d", n, len(np.Tensors))
	}
	// Small tensors are gated regardless of predictions.
	for i, tp := range p.Tensors {
		if np.Tensors[i].Bytes < MinCompressBytes && tp.Compress {
			t.Fatalf("tensor %s below the 20 MB gate was compressed", np.Tensors[i].Name)
		}
	}
}

func TestOracSharesDecisionsZeroCost(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 49)
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	cswap := CSWAP{Predictor: fixedPredictor{c: 0.010, dc: 0.008}, Launch: compress.Launch{Grid: 199, Block: 64}}
	pc := cswap.Plan(np, d)
	po := Orac{Inner: cswap}.Plan(np, d)
	if pc.CompressedCount() != po.CompressedCount() {
		t.Fatalf("Orac compresses %d, CSWAP %d — paper says the same count",
			po.CompressedCount(), pc.CompressedCount())
	}
	for i, tp := range po.Tensors {
		if tp.TimeC != 0 || tp.TimeDC != 0 {
			t.Fatalf("Orac tensor %d has kernel cost", i)
		}
		if tp.Compress != pc.Tensors[i].Compress {
			t.Fatalf("Orac decision %d differs from CSWAP", i)
		}
	}
}

func TestPlanValidateRejectsBadPlans(t *testing.T) {
	_, d, np := testSetup(t, "AlexNet", 0)
	p := VDNN{}.Plan(np, d)
	short := &Plan{Framework: "x", Tensors: p.Tensors[:1]}
	if err := short.Validate(np); err == nil {
		t.Error("accepted wrong tensor count")
	}
	bad := VDNN{}.Plan(np, d)
	bad.Tensors[0].TransferRatio = 0
	if err := bad.Validate(np); err == nil {
		t.Error("accepted zero transfer ratio")
	}
	bad2 := VDNN{}.Plan(np, d)
	bad2.Tensors[0].TimeC = -1
	if err := bad2.Validate(np); err == nil {
		t.Error("accepted negative duration")
	}
	bad3 := VDNN{}.Plan(np, d)
	bad3.Tensors[0].Compress = true
	bad3.Tensors[0].Alg = compress.Algorithm(99)
	if err := bad3.Validate(np); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 0)
	p := VDNN{}.Plan(np, d)
	a, err := Simulate(m, d, np, p, Options{Seed: 5, Jitter: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, d, np, p, Options{Seed: 5, Jitter: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime != b.IterationTime || a.SwapExposed != b.SwapExposed {
		t.Fatal("simulation not deterministic per seed")
	}
	c, err := Simulate(m, d, np, p, Options{Seed: 6, Jitter: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime == c.IterationTime {
		t.Fatal("different seeds produced identical jittered runs")
	}
}

func TestSimulateIterationLongerThanCompute(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 0)
	p := VDNN{}.Plan(np, d)
	r, err := Simulate(m, d, np, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.IterationTime < r.ComputeBusy {
		t.Fatalf("iteration %v shorter than compute %v", r.IterationTime, r.ComputeBusy)
	}
	if r.ForwardTime <= 0 || r.ForwardTime >= r.IterationTime {
		t.Fatalf("forward time %v outside (0, iteration)", r.ForwardTime)
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput must be positive")
	}
	if r.D2HBusy <= 0 || r.H2DBusy <= 0 {
		t.Fatal("DMA engines never used")
	}
	if r.KernelBusy != 0 {
		t.Fatal("vDNN must not use compression kernels")
	}
}

func TestSimulateExposedStallsConsistent(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 0)
	p := VDNN{}.Plan(np, d)
	r, err := Simulate(m, d, np, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tt := range r.Tensors {
		if tt.ExposedF < 0 || tt.ExposedB < 0 {
			t.Fatal("negative exposure")
		}
		sum += tt.ExposedF + tt.ExposedB
	}
	if math.Abs(sum-r.SwapExposed) > 1e-9 {
		t.Fatalf("SwapExposed %v != per-tensor sum %v", r.SwapExposed, sum)
	}
	// Total stall cannot exceed iteration − compute... per stream; sanity:
	if r.SwapExposed > r.IterationTime {
		t.Fatal("exposed stalls exceed iteration time")
	}
}

func TestSimulateCompressionReducesTransferredBytes(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 49)
	raw, err := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Simulate(m, d, np, Static{Launch: compress.Launch{Grid: 199, Block: 64}}.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// DMA busy time under SC includes kernels; compare pure transfer sums.
	var rawOff, scOff float64
	for i := range raw.Tensors {
		rawOff += raw.Tensors[i].OffloadDur
		scOff += sc.Tensors[i].OffloadDur
	}
	if scOff >= rawOff {
		t.Fatalf("compressed offloads (%v) not smaller than raw (%v)", scOff, rawOff)
	}
}

func TestSimulateHostCodecSerialisesOnLink(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 49)
	raw, err := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Simulate(m, d, np, VDNNPP{}.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pp.IterationTime <= raw.IterationTime {
		t.Fatalf("vDNN++ (%v) should be slower than vDNN (%v)", pp.IterationTime, raw.IterationTime)
	}
}

func TestSimulateOracBeatsCSWAPBeatsVDNN(t *testing.T) {
	m, d, np := testSetup(t, "SqueezeNet", 49)
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	launch := compress.Launch{Grid: 199, Block: 64}
	// Predictions matching the device model keep decisions sharp.
	pred := devicePredictor{d: d, launch: launch}
	cswap := CSWAP{Predictor: pred, Launch: launch}
	opt := DefaultOptions(9)
	rv, err := Simulate(m, d, np, VDNN{}.Plan(np, d), opt)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Simulate(m, d, np, cswap.Plan(np, d), opt)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Simulate(m, d, np, Orac{Inner: cswap}.Plan(np, d), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !(ro.IterationTime <= rc.IterationTime && rc.IterationTime < rv.IterationTime) {
		t.Fatalf("ordering violated: Orac=%v CSWAP=%v vDNN=%v",
			ro.IterationTime, rc.IterationTime, rv.IterationTime)
	}
}

// devicePredictor predicts with the true kernel model (an oracle predictor
// for tests).
type devicePredictor struct {
	d      *gpu.Device
	launch compress.Launch
}

func (p devicePredictor) Predict(alg compress.Algorithm, size int64, s float64) (float64, float64, error) {
	c, dc := p.d.CompressionTime(gpu.KernelParams{Alg: alg, SizeBytes: size, Sparsity: s, Launch: p.launch})
	return c, dc, nil
}

func TestSimulateEmptyModelNoTensors(t *testing.T) {
	// A model whose profile has no swappable tensors must still simulate.
	d := gpu.V100()
	m := dnn.MustBuild("AlexNet", dnn.ImageNet, 16)
	sp := sparsity.ForModel(m, 50, 1)
	np := profiler.Collect(m, d, sp, 0)
	np.Tensors = nil
	plan := &Plan{Framework: "vDNN"}
	r, err := Simulate(m, d, np, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SwapExposed != 0 || len(r.Tensors) != 0 {
		t.Fatal("tensor-free run should have no swap activity")
	}
	if r.IterationTime <= 0 {
		t.Fatal("compute still takes time")
	}
}

func TestSimulateRejectsMismatchedInputs(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 0)
	p := VDNN{}.Plan(np, d)
	other := dnn.MustBuild("VGG16", dnn.ImageNet, 8)
	if _, err := Simulate(other, d, np, p, Options{}); err == nil {
		t.Fatal("accepted profile from a different model")
	}
	_ = m
}

func TestSimulateTraceRecordsAllStreams(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 49)
	tl := &trace.Timeline{}
	p := Static{Launch: compress.Launch{Grid: 199, Block: 64}}.Plan(np, d)
	if _, err := Simulate(m, d, np, p, Options{Trace: tl, Interference: 0.1}); err != nil {
		t.Fatal(err)
	}
	streams := map[string]bool{}
	for _, s := range tl.Streams() {
		streams[s] = true
	}
	for _, want := range []string{"compute", "d2h", "h2d"} {
		if !streams[want] {
			t.Fatalf("stream %q missing from trace (got %v)", want, tl.Streams())
		}
	}
	if tl.Horizon() <= 0 {
		t.Fatal("empty trace horizon")
	}
}

func TestInterferenceSlowsComputeBoundRuns(t *testing.T) {
	m, d, np := testSetup(t, "VGG16", 49)
	p := Static{Launch: compress.Launch{Grid: 199, Block: 64}}.Plan(np, d)
	none, err := Simulate(m, d, np, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Simulate(m, d, np, p, Options{Interference: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.ComputeBusy <= none.ComputeBusy {
		t.Fatal("interference should add compute occupancy")
	}
	if heavy.IterationTime < none.IterationTime {
		t.Fatal("interference should never speed up the run")
	}
}

func TestMeasureHiddenWindowsNonNegative(t *testing.T) {
	m, d, np := testSetup(t, "MobileNet", 25)
	analytic := make([]float64, len(np.Tensors))
	for i, tp := range np.Tensors {
		analytic[i] = tp.HiddenF
	}
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	for i, tp := range np.Tensors {
		if tp.HiddenF < 0 || tp.HiddenB < 0 {
			t.Fatalf("tensor %d negative hidden window", i)
		}
		// Measured windows never exceed the raw transfer duration.
		maxF := d.Link.TransferTime(tp.Bytes, 0) * 1.01
		_ = maxF
		_ = analytic
	}
}

func TestSwapExposureMatchesCostModelShape(t *testing.T) {
	// In a deterministic run, a tensor with a huge raw transfer and a tiny
	// hiding window must show positive exposure; a tiny tensor must not.
	m, d, np := testSetup(t, "VGG16", 0)
	r, err := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	biggest, smallest := 0, 0
	for i, tp := range np.Tensors {
		if tp.Bytes > np.Tensors[biggest].Bytes {
			biggest = i
		}
		if tp.Bytes < np.Tensors[smallest].Bytes {
			smallest = i
		}
	}
	if r.Tensors[biggest].ExposedF+r.Tensors[biggest].ExposedB == 0 {
		t.Fatal("largest VGG16 tensor should expose stall under vDNN")
	}
	if got := r.Tensors[smallest].ExposedF + r.Tensors[smallest].ExposedB; got > 0.002 {
		t.Fatalf("smallest tensor exposes %v s", got)
	}
}

// TestSimulatorConservationInvariants checks structural timing invariants
// across random plans: the iteration is at least as long as every stream's
// busy time, forward precedes backward, and disabling jitter reproduces the
// deterministic baseline.
func TestSimulatorConservationInvariants(t *testing.T) {
	m, d, np := testSetup(t, "SqueezeNet", 30)
	rng := newPlanRNG(11)
	for trial := 0; trial < 25; trial++ {
		plan := randomPlan(np, d, rng)
		r, err := Simulate(m, d, np, plan, Options{Seed: int64(trial), Jitter: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if r.IterationTime < r.ComputeBusy-1e-9 {
			t.Fatalf("trial %d: iteration %v < compute busy %v", trial, r.IterationTime, r.ComputeBusy)
		}
		if r.IterationTime < r.D2HBusy-1e-9 || r.IterationTime < r.H2DBusy-1e-9 {
			t.Fatalf("trial %d: iteration shorter than a DMA engine's busy time", trial)
		}
		if r.ForwardTime <= 0 || r.ForwardTime > r.IterationTime {
			t.Fatalf("trial %d: forward %v outside (0, %v]", trial, r.ForwardTime, r.IterationTime)
		}
		for _, tt := range r.Tensors {
			if tt.ExposedF < 0 || tt.ExposedB < 0 || tt.OffloadDur < 0 || tt.PrefetchDur < 0 {
				t.Fatalf("trial %d: negative timing in %+v", trial, tt)
			}
		}
	}
}

// newPlanRNG and randomPlan build arbitrary-but-valid plans for invariant
// testing.
func newPlanRNG(seed int64) *planRNG { return &planRNG{state: uint64(seed)*2654435761 + 1} }

type planRNG struct{ state uint64 }

func (r *planRNG) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 11
}

func randomPlan(np *profiler.NetworkProfile, d *gpu.Device, rng *planRNG) *Plan {
	p := &Plan{Framework: "random", Tensors: make([]TensorPlan, len(np.Tensors))}
	algs := compress.Algorithms()
	for i, tp := range np.Tensors {
		switch rng.next() % 3 {
		case 0: // raw
			p.Tensors[i] = TensorPlan{TransferRatio: 1}
		case 1: // host codec
			p.Tensors[i] = TensorPlan{TransferRatio: 1,
				HostC: float64(rng.next()%20) * 1e-3, HostDC: float64(rng.next()%20) * 1e-3}
		default: // GPU compressed
			alg := algs[rng.next()%uint64(len(algs))]
			c, dc := d.CompressionTime(gpu.KernelParams{
				Alg: alg, SizeBytes: tp.Bytes, Sparsity: tp.Sparsity,
				Launch: compress.Launch{Grid: 1 + int(rng.next()%4096), Block: 64},
			})
			p.Tensors[i] = TensorPlan{
				Compress: true, Alg: alg, TimeC: c, TimeDC: dc,
				TransferRatio: compress.EstimateRatio(alg, tp.Sparsity),
			}
		}
	}
	return p
}

func TestPlanString(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 45)
	if err := MeasureHiddenWindows(m, d, np); err != nil {
		t.Fatal(err)
	}
	planner := CSWAP{Predictor: devicePredictor{d: d, launch: chooseLaunch()}, Launch: chooseLaunch()}
	plan := planner.Plan(np, d)
	plan.Tensors[0].Skip = true
	plan.Tensors[0].Compress = false
	plan.Tensors[0].TimeC, plan.Tensors[0].TimeDC = 0, 0
	out := plan.String()
	for _, want := range []string{"plan[CSWAP]", "resident", "raw"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan render missing %q:\n%s", want, out)
		}
	}
}

func TestPipelinedCodecAblation(t *testing.T) {
	// With double-buffered codec streams, a blind always-compress scheme
	// hides kernel time behind the saturated link, so SC improves; the
	// serial pipeline (the paper's Fig. 2(b) semantics) is never faster.
	m, d, np := testSetup(t, "MobileNet", 45)
	plan := Static{Launch: chooseLaunch()}.Plan(np, d)
	serial, err := Simulate(m, d, np, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := Simulate(m, d, np, plan, Options{PipelinedCodec: true})
	if err != nil {
		t.Fatal(err)
	}
	if pipelined.IterationTime > serial.IterationTime+1e-9 {
		t.Fatalf("pipelined (%v) slower than serial (%v)",
			pipelined.IterationTime, serial.IterationTime)
	}
	if pipelined.IterationTime > 0.98*serial.IterationTime {
		t.Fatalf("pipelining bought only %.2f%% on a saturated workload",
			(1-pipelined.IterationTime/serial.IterationTime)*100)
	}
	// Kernel accounting survives either mode.
	if pipelined.KernelBusy <= 0 || serial.KernelBusy <= 0 {
		t.Fatal("kernel busy accounting lost")
	}
	// vDNN (no kernels) is unaffected by the switch.
	v1, _ := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{})
	v2, _ := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{PipelinedCodec: true})
	if v1.IterationTime != v2.IterationTime {
		t.Fatal("pipelining changed a codec-free run")
	}
}

func TestEagerPrefetchNeverSlower(t *testing.T) {
	for _, model := range []string{"VGG16", "MobileNet", "AlexNet"} {
		m, d, np := testSetup(t, model, 30)
		for _, mk := range []func() *Plan{
			func() *Plan { return VDNN{}.Plan(np, d) },
			func() *Plan { return Static{Launch: chooseLaunch()}.Plan(np, d) },
		} {
			plan := mk()
			lazy, err := Simulate(m, d, np, plan, Options{})
			if err != nil {
				t.Fatal(err)
			}
			eager, err := Simulate(m, d, np, plan, Options{EagerPrefetch: true})
			if err != nil {
				t.Fatal(err)
			}
			if eager.IterationTime > lazy.IterationTime+1e-9 {
				t.Fatalf("%s/%s: eager prefetch slower (%v vs %v)",
					model, plan.Framework, eager.IterationTime, lazy.IterationTime)
			}
			// Forward pass is untouched by the prefetch policy.
			if eager.ForwardTime != lazy.ForwardTime {
				t.Fatalf("%s: eager prefetch changed the forward pass", model)
			}
		}
	}
}

func TestSimulateSurfacesCorruptProfileAsError(t *testing.T) {
	m, d, np := testSetup(t, "AlexNet", 0)
	np.Forward[3] = math.NaN()
	if _, err := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{}); err == nil {
		t.Fatal("NaN layer time accepted")
	}
	np.Forward[3] = -1
	if _, err := Simulate(m, d, np, VDNN{}.Plan(np, d), Options{}); err == nil {
		t.Fatal("negative layer time accepted")
	}
}
