package swap

import (
	"cswap/internal/metrics"
	"cswap/internal/trace"
)

// Option mutates simulation Options — the functional-options constructor
// arguments of NewOptions.
type Option func(*Options)

// NewOptions returns the standard jitter/interference configuration
// (DefaultOptions with seed 0) with opts applied in order. Nil options are
// skipped.
func NewOptions(opts ...Option) Options {
	o := DefaultOptions(0)
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithSeed sets the jitter stream seed.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithJitter sets the log-normal duration jitter σ (0 disables noise).
func WithJitter(sigma float64) Option { return func(o *Options) { o.Jitter = sigma } }

// WithInterference sets the SM-contention fraction charged to the compute
// stream for software compression kernels.
func WithInterference(f float64) Option { return func(o *Options) { o.Interference = f } }

// WithTrace records every job as a span on t.
func WithTrace(t *trace.Timeline) Option { return func(o *Options) { o.Trace = t } }

// WithObserver attaches the unified observability surface: busy-time and
// decision metrics land in its registry, and — when no explicit Trace is
// set — spans land on its timeline.
func WithObserver(obs *metrics.Observer) Option { return func(o *Options) { o.Observer = obs } }

// WithPipelinedCodec toggles the double-buffered-swapping ablation.
func WithPipelinedCodec(on bool) Option { return func(o *Options) { o.PipelinedCodec = on } }

// WithEagerPrefetch toggles the issue-all-prefetches-at-backward-start
// policy.
func WithEagerPrefetch(on bool) Option { return func(o *Options) { o.EagerPrefetch = on } }
