package swap

import (
	"sort"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/profiler"
)

// Memory-budget-aware swapping. The paper (like vDNN) swaps every
// ReLU/MAX activation; on a GPU with headroom that is wasteful — a tensor
// kept resident costs memory but zero transfer. MemoryAware wraps any
// framework and retires the most stall-expensive tensors from the swap set
// until the device memory budget is exhausted, using the measured per-
// tensor exposure of a calibration run as the value function.

// PlanPeakBytes estimates the device memory a plan needs beyond weights
// and workspace: all kept-resident activations plus the two largest
// in-flight swapped tensors (one being produced while the previous one
// drains).
func PlanPeakBytes(np *profiler.NetworkProfile, plan *Plan) int64 {
	var resident, first, second int64
	for i, tp := range plan.Tensors {
		b := np.Tensors[i].Bytes
		if tp.Skip {
			resident += b
			continue
		}
		if b > first {
			first, second = b, first
		} else if b > second {
			second = b
		}
	}
	return resident + first + second
}

// MemoryAware wraps an inner framework with an activation-memory budget:
// tensors whose swap causes the most exposed stall per byte are kept
// resident (Skip) while the budget lasts; the rest swap per the inner
// framework's plan.
type MemoryAware struct {
	// Inner produces the baseline plan (vDNN, SC, CSWAP, ...).
	Inner Framework
	// BudgetBytes is the activation-memory budget. It must at least cover
	// the two largest swapped tensors (the in-flight minimum); budgets
	// below that keep nothing resident.
	BudgetBytes int64
	// Model is needed to measure per-tensor exposure.
	Model *dnn.Model
}

// Name implements Framework.
func (ma MemoryAware) Name() string { return ma.Inner.Name() + "+mem" }

// Plan implements Framework: it measures the baseline exposure of every
// tensor in a deterministic calibration run, then greedily retires the
// highest stall-per-byte tensors from the swap set while they fit.
func (ma MemoryAware) Plan(np *profiler.NetworkProfile, d *gpu.Device) *Plan {
	plan := ma.Inner.Plan(np, d)
	plan.Framework = ma.Name()
	if ma.BudgetBytes <= 0 || ma.Model == nil {
		return plan
	}
	res, err := Simulate(ma.Model, d, np, ma.Inner.Plan(np, d), Options{})
	if err != nil {
		return plan
	}
	type cand struct {
		idx          int
		bytes        int64
		stallPerByte float64
	}
	var cands []cand
	for i := range np.Tensors {
		stall := res.Tensors[i].ExposedF + res.Tensors[i].ExposedB
		b := np.Tensors[i].Bytes
		if b == 0 {
			continue
		}
		cands = append(cands, cand{idx: i, bytes: b, stallPerByte: stall / float64(b)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].stallPerByte != cands[b].stallPerByte {
			return cands[a].stallPerByte > cands[b].stallPerByte
		}
		return cands[a].idx < cands[b].idx
	})
	for _, c := range cands {
		plan.Tensors[c.idx].Skip = true
		if PlanPeakBytes(np, plan) > ma.BudgetBytes {
			plan.Tensors[c.idx].Skip = false
		}
	}
	// A kept-resident tensor needs no codec either.
	for i := range plan.Tensors {
		if plan.Tensors[i].Skip {
			plan.Tensors[i] = TensorPlan{Skip: true, TransferRatio: 1}
		}
	}
	return plan
}

// SkippedCount returns how many tensors the plan keeps resident.
func (p *Plan) SkippedCount() int {
	n := 0
	for _, tp := range p.Tensors {
		if tp.Skip {
			n++
		}
	}
	return n
}
