package swap

import (
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/profiler"
)

// MeasureHiddenWindows refines the profile's Hidden_f/Hidden_b estimates by
// measurement, the way the paper's tensor profiler records the "overlapped
// swapping latency" (Table II) during the first compression-free training
// iteration: it simulates one vDNN iteration and sets each tensor's hidden
// window to the portion of its transfer that actually overlapped
// computation. Unlike the analytic per-layer windows, these values reflect
// DMA queueing — a tensor whose offload waits behind earlier transfers has
// a correspondingly smaller hidden window, so the Eq. 1 cost T′ matches the
// stall the system really observes.
func MeasureHiddenWindows(m *dnn.Model, d *gpu.Device, np *profiler.NetworkProfile) error {
	plan := VDNN{}.Plan(np, d)
	res, err := Simulate(m, d, np, plan, Options{})
	if err != nil {
		return err
	}
	for i := range np.Tensors {
		hf := res.Tensors[i].OffloadDur - res.Tensors[i].ExposedF
		hb := res.Tensors[i].PrefetchDur - res.Tensors[i].ExposedB
		if hf < 0 {
			hf = 0
		}
		if hb < 0 {
			hb = 0
		}
		np.Tensors[i].HiddenF = hf
		np.Tensors[i].HiddenB = hb
	}
	return nil
}
