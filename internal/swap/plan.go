// Package swap implements the tensor-swapping frameworks the paper
// evaluates — vDNN (swap only), vDNN++ (host-side compression), SC (the
// GPU replica of cDMA's static always-compress), CSWAP (cost-model
// selective compression), and Orac (the free-compression oracle) — together
// with a discrete-event simulation of one training iteration in which
// compute, compression kernels, and the two DMA engines run on separate
// streams and every stall emerges from event ordering.
package swap

import (
	"fmt"
	"strings"

	"cswap/internal/compress"
	"cswap/internal/profiler"
)

// TensorPlan is the per-tensor swapping decision for one iteration.
type TensorPlan struct {
	// Skip keeps the tensor resident in device memory: no offload, no
	// prefetch, no codec — it just occupies capacity (the memory-budget
	// planner's choice for the most stall-expensive tensors).
	Skip bool
	// Compress enables GPU-side (de)compression on the kernel stream.
	Compress bool
	// Alg is the codec used when Compress is set.
	Alg compress.Algorithm
	// TimeC and TimeDC are the kernel-stream durations in seconds (zero
	// for the oracle and for host-side schemes).
	TimeC, TimeDC float64
	// TransferRatio is the fraction of the raw bytes that crosses PCIe
	// (1 when not compressed on the GPU).
	TransferRatio float64
	// HostC and HostDC are host-side (de)compression times serialised
	// onto the copy engines (vDNN++: the pinned staging buffer is reused,
	// so the DMA cannot proceed past the CPU codec).
	HostC, HostDC float64
}

// Plan is a full iteration plan: one entry per swappable tensor, in
// SwapTensors order.
type Plan struct {
	Framework string
	Tensors   []TensorPlan
}

// Validate checks structural sanity against a network profile.
func (p *Plan) Validate(np *profiler.NetworkProfile) error {
	if len(p.Tensors) != len(np.Tensors) {
		return fmt.Errorf("swap: plan has %d tensors, profile has %d",
			len(p.Tensors), len(np.Tensors))
	}
	for i, tp := range p.Tensors {
		if tp.Skip && tp.Compress {
			return fmt.Errorf("swap: tensor %d both skipped and compressed", i)
		}
		if tp.TransferRatio <= 0 || tp.TransferRatio > 1.5 {
			return fmt.Errorf("swap: tensor %d transfer ratio %v out of range", i, tp.TransferRatio)
		}
		if tp.TimeC < 0 || tp.TimeDC < 0 || tp.HostC < 0 || tp.HostDC < 0 {
			return fmt.Errorf("swap: tensor %d negative duration", i)
		}
		if tp.Compress {
			if _, err := compress.New(tp.Alg); err != nil {
				return fmt.Errorf("swap: tensor %d: %w", i, err)
			}
		}
	}
	return nil
}

// CompressedCount returns how many tensors the plan compresses on the GPU.
func (p *Plan) CompressedCount() int {
	n := 0
	for _, tp := range p.Tensors {
		if tp.Compress {
			n++
		}
	}
	return n
}

// String renders the plan as a per-tensor decision table for debugging and
// the CLI tools.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan[%s] %d tensors, %d compressed, %d resident\n",
		p.Framework, len(p.Tensors), p.CompressedCount(), p.SkippedCount())
	for i, tp := range p.Tensors {
		switch {
		case tp.Skip:
			fmt.Fprintf(&b, "  #%-3d resident\n", i)
		case tp.Compress:
			fmt.Fprintf(&b, "  #%-3d compress %s ratio=%.2f tc=%.1fms tdc=%.1fms\n",
				i, tp.Alg, tp.TransferRatio, tp.TimeC*1e3, tp.TimeDC*1e3)
		case tp.HostC > 0:
			fmt.Fprintf(&b, "  #%-3d raw + host codec %.1fms/%.1fms\n", i, tp.HostC*1e3, tp.HostDC*1e3)
		default:
			fmt.Fprintf(&b, "  #%-3d raw\n", i)
		}
	}
	return b.String()
}
