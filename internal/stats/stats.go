// Package stats provides small statistical helpers shared across the CSWAP
// codebase: deterministic random number generation, error metrics (notably
// the relative absolute error used throughout the paper's evaluation), and
// summary statistics.
//
// Everything in this package is deterministic given a seed so that every
// experiment in the repository is exactly reproducible.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// NewRNG returns a deterministic pseudo-random source for the given seed.
// All randomness in the repository flows through this constructor so that
// experiments are reproducible run to run.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// RAE computes the relative absolute error used in the paper (Section V-C):
//
//	RAE = Σ|ŷᵢ − yᵢ| / Σ|ȳ − yᵢ|
//
// where ȳ is the mean of the measured values. It reports how much better the
// predictor is than always predicting the mean; 0 is perfect, 1 matches the
// mean predictor. RAE panics if the slices differ in length and returns NaN
// for fewer than two samples or a constant target.
func RAE(predicted, measured []float64) float64 {
	if len(predicted) != len(measured) {
		panic("stats: RAE length mismatch")
	}
	if len(measured) < 2 {
		return math.NaN()
	}
	mean := Mean(measured)
	var num, den float64
	for i, y := range measured {
		num += math.Abs(predicted[i] - y)
		den += math.Abs(mean - y)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the population standard deviation of xs, or 0 for fewer
// than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the median of xs without modifying it, or 0 for an empty
// slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Normalize maps x from [lo, hi] to [0, 1], clamping the result. It panics
// when hi <= lo.
func Normalize(x, lo, hi float64) float64 {
	if hi <= lo {
		panic("stats: Normalize with hi <= lo")
	}
	return Clamp((x-lo)/(hi-lo), 0, 1)
}

// LogNormalJitter multiplies base by a log-normal factor exp(σ·z) with z
// drawn from rng. It models run-to-run wall-clock variance of kernels and
// copies; σ around 0.01–0.03 keeps the jitter within a few percent.
func LogNormalJitter(rng *rand.Rand, base, sigma float64) float64 {
	return base * math.Exp(sigma*rng.NormFloat64())
}
