package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRAEPerfectPrediction(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	if got := RAE(y, y); got != 0 {
		t.Fatalf("RAE of perfect prediction = %v, want 0", got)
	}
}

func TestRAEMeanPredictorIsOne(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	mean := Mean(y)
	pred := []float64{mean, mean, mean, mean, mean}
	if got := RAE(pred, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RAE of mean predictor = %v, want 1", got)
	}
}

func TestRAEKnownValue(t *testing.T) {
	y := []float64{0, 10}
	pred := []float64{1, 9}
	// Σ|ŷ−y| = 2, mean = 5, Σ|ȳ−y| = 10 → RAE = 0.2.
	if got := RAE(pred, y); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("RAE = %v, want 0.2", got)
	}
}

func TestRAEDegenerateInputs(t *testing.T) {
	if got := RAE([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("RAE of single sample = %v, want NaN", got)
	}
	if got := RAE([]float64{1, 1}, []float64{2, 2}); !math.IsNaN(got) {
		t.Errorf("RAE of constant target = %v, want NaN", got)
	}
}

func TestRAELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	RAE([]float64{1}, []float64{1, 2})
}

func TestMeanMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Mean(xs); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("Mean = %v, want 2.4", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := Sum(xs); got != 12 {
		t.Errorf("Sum = %v, want 12", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v, want 3", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	// Median must not reorder its input.
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	if got := StdDev([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev = %v, want 1", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev of 1 sample = %v, want 0", got)
	}
}

func TestClampAndNormalize(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Normalize(5, 0, 10); got != 0.5 {
		t.Errorf("Normalize(5,0,10) = %v", got)
	}
	if got := Normalize(-3, 0, 10); got != 0 {
		t.Errorf("Normalize clamps low: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi <= lo")
		}
	}()
	Normalize(1, 2, 2)
}

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestLogNormalJitterMeanNearBase(t *testing.T) {
	rng := NewRNG(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += LogNormalJitter(rng, 100, 0.02)
	}
	mean := sum / n
	if mean < 99 || mean > 101 {
		t.Fatalf("jitter mean = %v, want ≈100", mean)
	}
}

func TestClampPropertyWithinBounds(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		c := Clamp(x, -1, 1)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
