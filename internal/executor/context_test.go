package executor

import (
	"context"
	"errors"
	"testing"
	"time"

	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/tensor"
)

// newCtxExecutor builds an executor whose encodes stall long enough for a
// context to expire mid-operation.
func newCtxExecutor(t *testing.T, maxInFlight int, encodeDelay time.Duration) *Executor {
	t.Helper()
	cfg := Config{
		DeviceCapacity: 64 << 20,
		HostCapacity:   64 << 20,
		Verify:         true,
		MaxInFlight:    maxInFlight,
	}
	if encodeDelay > 0 {
		cfg.Faults = faultinject.New(faultinject.Fault{
			Site: faultinject.SiteEncode, Mode: faultinject.Delay,
			Delay: encodeDelay, Every: 1,
		})
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

func registerTensor(t *testing.T, e *Executor, name string, n int) (*Handle, []float32) {
	t.Helper()
	gen := tensor.NewGenerator(42)
	tn := gen.Uniform(n, 0.5)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register(name, tn)
	if err != nil {
		t.Fatal(err)
	}
	return h, want
}

// TestWaitContextCancelMidEncode cancels the waiter while the encode is
// still running: WaitContext must return the context error promptly, the
// operation must still commit, and the handle state machine must end up
// consistent — Swapped, restorable, bit-exact.
func TestWaitContextCancelMidEncode(t *testing.T) {
	e := newCtxExecutor(t, 2, 200*time.Millisecond)
	h, want := registerTensor(t, e, "slow", 4096)

	ctx, cancel := context.WithCancel(context.Background())
	tk := e.SwapOutAsyncCtx(ctx, h, true, compress.ZVC)
	time.Sleep(20 * time.Millisecond) // let the encode start stalling
	cancel()
	if err := tk.WaitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitContext after cancel: %v, want context.Canceled", err)
	}
	// Abandoning the wait did not abandon the work: the ticket still
	// resolves, the state commits, and the slot frees.
	if err := tk.Wait(); err != nil {
		t.Fatalf("operation after abandoned wait: %v", err)
	}
	e.Drain()
	if got := h.State(); got != Swapped {
		t.Fatalf("state after abandoned wait = %v, want Swapped", got)
	}
	if n := e.InFlight(); n != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", n)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	data, err := h.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, data[i], want[i])
		}
	}
}

// TestAcquireCtxExpiresWhileBlocked saturates a 1-slot window with a slow
// swap, then submits with an already-short deadline: the second ticket
// must resolve with the deadline error and its handle roll back to
// Resident with nothing run.
func TestAcquireCtxExpiresWhileBlocked(t *testing.T) {
	e := newCtxExecutor(t, 1, 300*time.Millisecond)
	slow, _ := registerTensor(t, e, "slow", 4096)
	fast, _ := registerTensor(t, e, "fast", 256)

	blocker := e.SwapOutAsync(slow, true, compress.ZVC)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	tk := e.SwapOutAsyncCtx(ctx, fast, true, compress.ZVC)
	if err := tk.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit with expired deadline: %v, want DeadlineExceeded", err)
	}
	if got := fast.State(); got != Resident {
		t.Fatalf("rolled-back handle state = %v, want Resident", got)
	}
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	// The rollback left the machine clean: the same handle swaps normally
	// once the window frees.
	if err := e.SwapOutAsync(fast, true, compress.ZVC).Wait(); err != nil {
		t.Fatalf("swap after rollback: %v", err)
	}
	if got := fast.State(); got != Swapped {
		t.Fatalf("state after retry = %v, want Swapped", got)
	}
}

// TestAcquireCtxAlreadyExpired submits with a dead context while the
// window is full: the claim must roll back without ever waiting.
func TestAcquireCtxAlreadyExpired(t *testing.T) {
	e := newCtxExecutor(t, 1, 200*time.Millisecond)
	slow, _ := registerTensor(t, e, "slow", 4096)
	fast, _ := registerTensor(t, e, "fast", 256)

	blocker := e.SwapOutAsync(slow, true, compress.ZVC)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.SwapOutAsyncCtx(ctx, fast, true, compress.ZVC).Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context submit: %v, want context.Canceled", err)
	}
	if got := fast.State(); got != Resident {
		t.Fatalf("state = %v, want Resident", got)
	}
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchCtx covers the context path through Prefetch: a resident
// handle short-circuits regardless of ctx, and a swapped one honors the
// submission deadline.
func TestPrefetchCtx(t *testing.T) {
	e := newCtxExecutor(t, 1, 200*time.Millisecond)
	h, _ := registerTensor(t, e, "a", 1024)
	slow, _ := registerTensor(t, e, "slow", 4096)

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.PrefetchCtx(dead, h).Wait(); err != nil {
		t.Fatalf("prefetch of resident handle with dead ctx: %v, want nil", err)
	}

	if err := e.SwapOut(h, false, 0); err != nil {
		t.Fatal(err)
	}
	blocker := e.SwapOutAsync(slow, true, compress.ZVC) // fills the window
	if err := e.PrefetchCtx(dead, h).Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked prefetch with dead ctx: %v, want context.Canceled", err)
	}
	if got := h.State(); got != Swapped {
		t.Fatalf("state after refused prefetch = %v, want Swapped", got)
	}
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := e.Prefetch(h).Wait(); err != nil {
		t.Fatal(err)
	}
	if got := h.State(); got != Resident {
		t.Fatalf("state after prefetch = %v, want Resident", got)
	}
}

// TestWaitContextCompleted returns the op error, not the ctx error, when
// the ticket is already resolved — even if the context is also done.
func TestWaitContextCompleted(t *testing.T) {
	e := newCtxExecutor(t, 2, 0)
	h, _ := registerTensor(t, e, "x", 256)
	tk := e.SwapOutAsync(h, true, compress.ZVC)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tk.WaitContext(ctx); err != nil {
		t.Fatalf("WaitContext on resolved ticket: %v, want nil", err)
	}
}
