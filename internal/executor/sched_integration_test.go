package executor

// Tests for the executor's coupling to the admission scheduler (ErrShed at
// run boundaries), the background watermark demoter, and tier prefetch
// read-ahead staging.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cswap/internal/compress"
	"cswap/internal/metrics"
	"cswap/internal/sched"
	"cswap/internal/tensor"
	"cswap/internal/tier"
)

// fakeShed is a hand-cranked ShedSignal: sheds speculative work while the
// flag is up, and counts Preempted calls.
type fakeShed struct {
	shed     atomic.Bool
	preempts atomic.Int64
}

func (f *fakeShed) ShouldShed(l sched.Lane) bool {
	return l == sched.LaneSpeculative && f.shed.Load()
}
func (f *fakeShed) Preempted() { f.preempts.Add(1) }

func counterValue(t *testing.T, e *Executor, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, _ := e.Registry().Snapshot().Counter(name, labels...)
	return v
}

func TestShedScalarPrefetch(t *testing.T) {
	sig := &fakeShed{}
	e, err := New(Config{DeviceCapacity: 1 << 20, HostCapacity: 1 << 20, Verify: true, Sched: sig})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tn := tensor.NewGenerator(3).Uniform(4096, 0.5)
	h, err := e.Register("act", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}

	// Shedding on, speculative hint: the prefetch yields without running.
	sig.shed.Store(true)
	spec := sched.WithHint(context.Background(), sched.Hint{Lane: sched.LaneSpeculative})
	if err := e.PrefetchCtx(spec, h).Wait(); !errors.Is(err, ErrShed) {
		t.Fatalf("speculative prefetch under shed: %v, want ErrShed", err)
	}
	if st := h.State(); st != Swapped {
		t.Fatalf("shed handle state %v, want Swapped (clean rollback)", st)
	}
	if n := sig.preempts.Load(); n != 1 {
		t.Fatalf("Preempted calls = %d, want 1", n)
	}
	if v := counterValue(t, e, "executor_sched_preemptions_total"); v != 1 {
		t.Fatalf("executor_sched_preemptions_total = %v, want 1", v)
	}

	// A critical hint is never shed, and neither is a hint-less context.
	crit := sched.WithHint(context.Background(), sched.Hint{Lane: sched.LaneCritical})
	if err := e.PrefetchCtx(crit, h).Wait(); err != nil {
		t.Fatalf("critical prefetch under shed: %v", err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.PrefetchCtx(context.Background(), h).Wait(); err != nil {
		t.Fatalf("hint-less prefetch under shed: %v", err)
	}

	// Shedding off: speculative work flows again.
	sig.shed.Store(false)
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.PrefetchCtx(spec, h).Wait(); err != nil {
		t.Fatalf("speculative prefetch after shed cleared: %v", err)
	}
}

func TestShedBatchMidRuns(t *testing.T) {
	sig := &fakeShed{}
	e, err := New(Config{DeviceCapacity: 1 << 22, HostCapacity: 1 << 22, Verify: true, Sched: sig})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	p, err := e.RegisterBlockPool("kv", 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Three non-contiguous runs so the batch has run boundaries to shed at.
	ids := []int{0, 1, 10, 11, 20, 21}
	if err := p.SwapOutBlocks(ids, true, compress.RLE); err != nil {
		t.Fatal(err)
	}

	sig.shed.Store(true)
	spec := sched.WithHint(context.Background(), sched.Hint{Lane: sched.LaneSpeculative})
	if err := p.PrefetchBlocksCtx(spec, ids).Wait(); !errors.Is(err, ErrShed) {
		t.Fatalf("speculative batch prefetch under shed: %v, want ErrShed", err)
	}
	for _, id := range ids {
		if st := p.BlockState(id); st != Swapped {
			t.Fatalf("block %d state %v after shed, want Swapped", id, st)
		}
	}
	if v := counterValue(t, e, "executor_sched_shed_runs_total"); v != 3 {
		t.Fatalf("executor_sched_shed_runs_total = %v, want 3 (whole batch)", v)
	}

	// The shed is load shedding, not failure: the same request resubmits
	// cleanly once the backlog clears.
	sig.shed.Store(false)
	if err := p.PrefetchBlocksCtx(spec, ids).Wait(); err != nil {
		t.Fatalf("resubmitted batch prefetch: %v", err)
	}
	for _, id := range ids {
		if st := p.BlockState(id); st != Resident {
			t.Fatalf("block %d state %v after restore, want Resident", id, st)
		}
	}
}

func TestWatermarkDemotion(t *testing.T) {
	ts, err := tier.Open(t.TempDir(), 1<<22, nil)
	if err != nil {
		t.Fatal(err)
	}
	const hostCap = 1 << 20
	e, err := New(Config{
		DeviceCapacity:        1 << 22,
		HostCapacity:          hostCap,
		Verify:                true,
		Tier:                  ts,
		TierWatermark:         0.5,
		TierWatermarkInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Raw swap-outs put ~768 KiB in the host pool — well past the 512 KiB
	// watermark — without any inline allocation pressure.
	for i := 0; i < 3; i++ {
		tn := tensor.NewGenerator(int64(i)).Uniform(64*1024, 0.5)
		h, err := e.Register(string(rune('a'+i)), tn)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SwapOut(h, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if used := e.HostStats().Used; used <= hostCap/2 {
		t.Fatalf("host pool holds %d bytes, want above the %d watermark", used, hostCap/2)
	}

	deadline := time.Now().Add(5 * time.Second)
	for e.HostStats().Used > hostCap/2 {
		if time.Now().After(deadline) {
			t.Fatalf("watermark demoter left host at %d bytes (watermark %d)",
				e.HostStats().Used, hostCap/2)
		}
		time.Sleep(time.Millisecond)
	}
	if v := counterValue(t, e, "executor_tier_demotions_total", metrics.L("reason", "watermark")); v < 1 {
		t.Fatalf("watermark demotion counter = %v, want >= 1", v)
	}
	if e.TierUsed() == 0 {
		t.Fatal("tier empty after watermark demotion")
	}
}

func TestWatermarkConfigValidation(t *testing.T) {
	if _, err := New(Config{DeviceCapacity: 1, HostCapacity: 1, TierWatermark: 0.5}); err == nil {
		t.Fatal("TierWatermark without a Tier accepted")
	}
	ts, err := tier.Open(t.TempDir(), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, wm := range []float64{-0.1, 1, 1.5} {
		if _, err := New(Config{DeviceCapacity: 1, HostCapacity: 1, Tier: ts, TierWatermark: wm}); err == nil {
			t.Fatalf("TierWatermark %v accepted", wm)
		}
	}
}

func TestPrefetchReadahead(t *testing.T) {
	// Device pool sized for exactly one tensor, so a prefetch of the
	// demoted tensor fails its device allocation while B occupies it —
	// but the read-ahead staging must already have paid the disk fault.
	const elems = 16 * 1024
	e, ts := newTierExecutor(t, elems*4, 1<<20, 1<<20, nil)
	a := tensor.NewGenerator(1).Uniform(elems, 0.5)
	want := append([]float32(nil), a.Data...)
	ha, err := e.Register("a", a)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(ha, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	hb, err := e.Register("b", tensor.NewGenerator(2).Uniform(elems, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Demote(ha); err != nil {
		t.Fatal(err)
	}

	// Device full: the prefetch cannot restore, but it stages disk→host.
	if err := e.Prefetch(ha).Wait(); err == nil {
		t.Fatal("prefetch restored a into a full device pool")
	}
	if ha.InTier() {
		t.Fatal("prefetch read-ahead left the handle tiered")
	}
	if ts.Len() != 0 {
		t.Fatalf("tier still holds %d blobs after staging", ts.Len())
	}
	if e.HostStats().Used == 0 {
		t.Fatal("staged payload not charged to the host pool")
	}
	if v := counterValue(t, e, "executor_tier_readahead_total"); v != 1 {
		t.Fatalf("executor_tier_readahead_total = %v, want 1", v)
	}

	// The demand swap-in now reads host memory: no new tier hit.
	hits := counterValue(t, e, "executor_tier_hits_total")
	if err := e.Free(hb); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(ha); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, ha, want)
	if v := counterValue(t, e, "executor_tier_hits_total"); v != hits {
		t.Fatalf("demand swap-in hit the tier (%v -> %v) after read-ahead", hits, v)
	}
}

func TestBatchPrefetchReadahead(t *testing.T) {
	e, ts := newTierExecutor(t, 1<<22, 1<<22, 1<<22, nil)
	p, err := e.RegisterBlockPool("kv", 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{4, 5, 6, 7}
	if err := p.SwapOutBlocks(ids, true, compress.RLE); err != nil {
		t.Fatal(err)
	}
	runs := p.storedRuns()
	if len(runs) != 1 {
		t.Fatalf("stored runs = %d, want 1", len(runs))
	}
	if err := p.demoteRun(runs[0].pr); err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 1 {
		t.Fatalf("tier holds %d blobs after run demotion, want 1", ts.Len())
	}

	if err := p.PrefetchBlocks(ids).Wait(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st := p.BlockState(id); st != Resident {
			t.Fatalf("block %d state %v after prefetch, want Resident", id, st)
		}
	}
	if v := counterValue(t, e, "executor_tier_readahead_total"); v != 1 {
		t.Fatalf("executor_tier_readahead_total = %v, want 1", v)
	}
	if ts.Len() != 0 {
		t.Fatalf("tier still holds %d blobs after prefetch", ts.Len())
	}
}
