package executor

import (
	"math/bits"
	"sync"

	"cswap/internal/metrics"
)

// arena recycles the byte buffers that flow through the swap hot path:
// compressed encode outputs and fault-injected transfer copies. (Raw swap
// buffers stay on the devmem.Cache, which models the pinned-host buffer
// reuse; the arena owns only what the cache does not.)
//
// Buffers are size-classed by power-of-two capacity: get(n) draws from the
// class of ceil(log2(n)), and put files a buffer under floor(log2(cap)), so
// any buffer popped from a class satisfies every request routed to it —
// including blobs that grew past their original reservation.
//
// Ownership rule: a buffer leaves the arena at get and returns at exactly
// one recycle point, after the structure that held it (a Handle's blob, a
// transfer copy) has released it. Nothing may retain a view into a buffer
// across its put.
type arena struct {
	classes [arenaClassCount]sync.Pool
	// hits/misses split gets by whether a pooled buffer was available;
	// puts counts buffers accepted back. Registered so the Observer's
	// registry exposes reuse effectiveness next to the swap counters.
	hits, misses, puts *metrics.Counter
}

const (
	arenaMinShift   = 6  // 64 B: smaller buffers are cheaper to allocate than to track
	arenaMaxShift   = 30 // 1 GiB: larger buffers would pin too much memory in the pool
	arenaClassCount = arenaMaxShift - arenaMinShift + 1
)

func newArena(r *metrics.Registry) *arena {
	return &arena{
		hits:   r.Counter("executor_arena_gets_total", metrics.L("outcome", "hit")),
		misses: r.Counter("executor_arena_gets_total", metrics.L("outcome", "miss")),
		puts:   r.Counter("executor_arena_puts_total"),
	}
}

// arenaClass returns the size class index for a request or capacity of n
// bytes, and whether n is poolable at all.
func arenaClass(n int) (int, bool) {
	if n <= 0 {
		return 0, false
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2(n))
	if shift < arenaMinShift {
		shift = arenaMinShift
	}
	if shift > arenaMaxShift {
		return 0, false
	}
	return shift - arenaMinShift, true
}

// get returns a zero-length buffer with capacity at least n.
func (a *arena) get(n int) []byte {
	class, ok := arenaClass(n)
	if !ok {
		a.misses.Inc()
		return make([]byte, 0, n)
	}
	if p, _ := a.classes[class].Get().(*[]byte); p != nil {
		a.hits.Inc()
		return (*p)[:0]
	}
	a.misses.Inc()
	return make([]byte, 0, 1<<(class+arenaMinShift))
}

// put recycles a buffer. Buffers whose capacity falls outside the pooled
// classes are dropped; a buffer is filed under the largest class its
// capacity fully covers so get's guarantee holds.
func (a *arena) put(b []byte) {
	c := cap(b)
	if c < 1<<arenaMinShift || c > 1<<arenaMaxShift {
		return
	}
	class := bits.Len(uint(c)) - 1 - arenaMinShift // floor(log2(cap))
	b = b[:0]
	a.classes[class].Put(&b)
	a.puts.Inc()
}
