package executor

import (
	"errors"
	"math"
	"sync"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/tensor"
	"cswap/internal/tier"
)

// newTierExecutor builds an executor with a disk spill tier in a fresh
// temp directory, sharing the fault injector between the tier store and
// the data path (as cswapd does).
func newTierExecutor(t *testing.T, dev, host, tierCap int64, inj *faultinject.Injector) (*Executor, *tier.Store) {
	t.Helper()
	ts, err := tier.Open(t.TempDir(), tierCap, inj)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		DeviceCapacity: dev,
		HostCapacity:   host,
		Verify:         true,
		Faults:         inj,
		Tier:           ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e, ts
}

func assertBitExact(t *testing.T, h *Handle, want []float32) {
	t.Helper()
	got, err := h.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("payload mismatch at %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestDemotePromoteRoundTrip(t *testing.T) {
	e, ts := newTierExecutor(t, 1<<22, 1<<22, 1<<22, nil)
	tn := tensor.NewGenerator(11).Uniform(50000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("act", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	hostUsed := e.HostStats().Used
	if hostUsed == 0 {
		t.Fatal("nothing in host pool after swap-out")
	}

	if err := e.Demote(h); err != nil {
		t.Fatal(err)
	}
	if !h.InTier() {
		t.Fatal("handle not tiered after Demote")
	}
	if h.State() != Swapped {
		t.Fatalf("tiered handle state %v, want Swapped", h.State())
	}
	if e.HostStats().Used != 0 {
		t.Fatalf("host pool still holds %d bytes after demotion", e.HostStats().Used)
	}
	if e.TierUsed() == 0 || ts.Len() != 1 {
		t.Fatalf("tier holds %d bytes / %d blobs, want the demoted blob", e.TierUsed(), ts.Len())
	}
	// Demoting an already-tiered handle is an idempotent no-op.
	if err := e.Demote(h); err != nil {
		t.Fatalf("re-demote: %v", err)
	}
	if st := e.Stats(); st.TierDemotions != 1 {
		t.Fatalf("TierDemotions = %d, want 1", st.TierDemotions)
	}

	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, h, want)
	if h.InTier() {
		t.Fatal("handle still tiered after restore")
	}
	if e.TierUsed() != 0 || ts.Len() != 0 {
		t.Fatalf("tier not drained after promotion: %d bytes / %d blobs", e.TierUsed(), ts.Len())
	}
	if st := e.Stats(); st.TierPromotions != 1 {
		t.Fatalf("TierPromotions = %d, want 1", st.TierPromotions)
	}
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}
}

func TestDemoteTaxonomy(t *testing.T) {
	// No tier configured: ErrNoTier, and the host-pressure fallback path
	// reports no headroom rather than inventing any.
	plain := newTestExecutor(t, 1<<20, 1<<20)
	tn := tensor.NewGenerator(12).Uniform(1000, 0.5)
	h, err := plain.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := plain.Demote(h); !errors.Is(err, ErrNoTier) {
		t.Fatalf("Demote without tier = %v, want ErrNoTier", err)
	}
	if plain.freeHostSpace(1) {
		t.Fatal("freeHostSpace claimed headroom without a tier")
	}

	// Resident handles are not demotable (the state taxonomy applies).
	e, _ := newTierExecutor(t, 1<<20, 1<<20, 1<<20, nil)
	h2, err := e.Register("y", tensor.NewGenerator(13).Uniform(1000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Demote(h2); err == nil {
		t.Fatal("Demote accepted a Resident handle")
	}

	// A tier too small for the blob: ErrFull, payload stays host-resident.
	small, _ := newTierExecutor(t, 1<<22, 1<<22, 64, nil)
	h3, err := small.Register("z", tensor.NewGenerator(14).Uniform(50000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := small.SwapOut(h3, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	before := small.HostStats().Used
	if err := small.Demote(h3); !errors.Is(err, tier.ErrFull) {
		t.Fatalf("Demote into full tier = %v, want tier.ErrFull", err)
	}
	if h3.InTier() || small.HostStats().Used != before {
		t.Fatal("failed demotion disturbed the host-resident payload")
	}
	if err := small.SwapIn(h3); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesTierEntry(t *testing.T) {
	e, ts := newTierExecutor(t, 1<<22, 1<<22, 1<<22, nil)
	h, err := e.Register("gone", tensor.NewGenerator(15).Uniform(20000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.Demote(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}
	if e.TierUsed() != 0 || ts.Len() != 0 {
		t.Fatalf("freed handle left %d bytes / %d blobs in the tier", e.TierUsed(), ts.Len())
	}
}

// TestSwapOutDemotesUnderHostPressure pins the tentpole behavior: a
// swap-out that previously failed (or burned the raw fallback) on a full
// host pool now demotes cold payloads to disk and proceeds.
func TestSwapOutDemotesUnderHostPressure(t *testing.T) {
	// Host pool fits one 40000-byte raw blob but not two.
	e, _ := newTierExecutor(t, 1<<22, 48<<10, 1<<20, nil)
	gen := tensor.NewGenerator(16)
	ta := gen.Uniform(10000, 0.5)
	tb := gen.Uniform(10000, 0.5)
	wantA := append([]float32(nil), ta.Data...)
	wantB := append([]float32(nil), tb.Data...)
	a, err := e.Register("a", ta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Register("b", tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(a, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(b, false, 0); err != nil {
		t.Fatalf("swap-out under host pressure: %v", err)
	}
	if !a.InTier() {
		t.Fatal("cold payload was not demoted to make room")
	}
	if b.InTier() {
		t.Fatal("fresh swap-out landed in the tier, want host pool")
	}
	if st := e.Stats(); st.TierDemotions != 1 {
		t.Fatalf("TierDemotions = %d, want 1", st.TierDemotions)
	}
	if err := e.SwapIn(a); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(b); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, a, wantA)
	assertBitExact(t, b, wantB)
	if st := e.Stats(); st.TierPromotions != 1 {
		t.Fatalf("TierPromotions = %d, want 1", st.TierPromotions)
	}
}

// TestVictimRankingPrefersWellCompressedCold pins the eviction order:
// DemotionScore demotes well-compressed payloads before poorly-compressed
// ones, and colder payloads before hotter ones.
func TestVictimRankingPrefersWellCompressedCold(t *testing.T) {
	e, _ := newTierExecutor(t, 1<<22, 1<<22, 1<<22, nil)
	gen := tensor.NewGenerator(17)
	sparse, err := e.Register("sparse", gen.Uniform(20000, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	dense, err := e.Register("dense", gen.Uniform(20000, 0.0))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Handle{sparse, dense} {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			t.Fatal(err)
		}
	}
	vs := e.tierVictims()
	if len(vs) != 2 {
		t.Fatalf("victims = %d, want 2", len(vs))
	}
	if vs[0].score >= vs[1].score {
		t.Fatalf("victims unsorted: %v >= %v", vs[0].score, vs[1].score)
	}
	// Same idle age: the better-compressed (smaller) blob demotes first.
	if vs[0].bytes >= vs[1].bytes {
		t.Fatalf("dense payload ranked before sparse one (%d bytes before %d)",
			vs[0].bytes, vs[1].bytes)
	}

	// Make the dense payload much colder than the sparse one: idleness
	// decays its score below even the poorly-compressed ratio.
	dense.mu.Lock()
	dense.swappedAt -= 1000
	dense.mu.Unlock()
	vs = e.tierVictims()
	if vs[0].bytes <= vs[1].bytes {
		t.Fatal("cold dense payload should now demote first")
	}
}

// TestDemoteVsSwapInConcurrent races Demote against SwapIn on the same
// handle: exactly one wins each claim, ErrBusy is the only contention
// signal, and the payload always restores bit-exact. Run with -race.
func TestDemoteVsSwapInConcurrent(t *testing.T) {
	e, _ := newTierExecutor(t, 1<<22, 1<<22, 1<<22, nil)
	tn := tensor.NewGenerator(18).Uniform(30000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("contended", tn)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := e.Demote(h); err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrNotSwapped) {
				t.Errorf("demote: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := e.SwapIn(h); err != nil && !errors.Is(err, ErrBusy) {
				t.Errorf("swap-in: %v", err)
			}
		}()
		wg.Wait()
		if h.State() == Swapped { // demote won, or swap-in lost the race
			if err := e.SwapIn(h); err != nil {
				t.Fatal(err)
			}
		}
		assertBitExact(t, h, want)
	}
	if e.TierUsed() != 0 {
		t.Fatalf("tier holds %d bytes after all restores", e.TierUsed())
	}
}

// TestTierCommitCrashConsistency pins the crash contract: a failure
// between the tier blob write and the index commit (SiteTierCommit) leaves
// the payload fully host-resident and the tier directory cleanly absent of
// the blob — a restart of the store finds nothing torn.
func TestTierCommitCrashConsistency(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Site: faultinject.SiteTierCommit, Mode: faultinject.Fail})
	e, ts := newTierExecutor(t, 1<<22, 1<<22, 1<<22, inj)
	tn := tensor.NewGenerator(19).Uniform(30000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("crash", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	hostUsed := e.HostStats().Used

	if err := e.Demote(h); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Demote = %v, want injected commit failure", err)
	}
	if h.InTier() {
		t.Fatal("handle marked tiered after failed commit")
	}
	if e.HostStats().Used != hostUsed {
		t.Fatal("failed demotion released the host copy")
	}

	// Simulated restart: reopening the directory must find no committed
	// blob and no torn remnants.
	re, err := tier.Open(ts.Dir(), 1<<22, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 || re.Used() != 0 {
		t.Fatalf("restarted store found %d blobs / %d bytes, want none", re.Len(), re.Used())
	}

	// The payload is fully recoverable from host state...
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	assertBitExact(t, h, want)

	// ...and the fault fired once, so a retried demotion commits durably.
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.Demote(h); err != nil {
		t.Fatal(err)
	}
	re2, err := tier.Open(ts.Dir(), 1<<22, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re2.Len() != 1 {
		t.Fatalf("restarted store found %d blobs, want the committed one", re2.Len())
	}
}

// TestSwapOutMutateOwnership pins the blob-ownership fix on the
// fault-injection mutate path: when a transfer-out fault replaces the
// encode output with a mutated copy, the pristine original must survive
// until the operation resolves and then be recycled exactly once — never
// recycled early (a concurrent encode could alias it) and never confused
// with the non-arena mutated copy. Observable contract: the corruption is
// persistent (swap-in detects it), state stays coherent, and the arena
// keeps round-tripping cleanly afterwards.
func TestSwapOutMutateOwnership(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Site: faultinject.SiteTransferOut, Mode: faultinject.Corrupt})
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	tn := tensor.NewGenerator(20).Uniform(30000, 0.6)
	h, err := e.Register("mutated", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	// The stored blob is the corrupted transfer copy: restore must fail
	// (decode error or checksum mismatch), and the handle must roll back
	// to Swapped, not wedge or crash on a recycled buffer.
	if err := e.SwapIn(h); err == nil {
		t.Fatal("swap-in verified a persistently corrupted blob")
	}
	if h.State() != Swapped {
		t.Fatalf("state %v after failed restore, want Swapped", h.State())
	}
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}

	// The fault fired once; subsequent cycles reuse the arena buffers the
	// fix recycled. Under the old ownership bug the pristine blob was
	// either recycled while still aliased or replaced by a foreign buffer,
	// which these round trips would surface as corruption or a double-put.
	for i := 0; i < 8; i++ {
		tc := tensor.NewGenerator(int64(21 + i)).Uniform(30000, 0.6)
		want := append([]float32(nil), tc.Data...)
		hc, err := e.Register("clean", tc)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SwapOut(hc, true, compress.ZVC); err != nil {
			t.Fatal(err)
		}
		if err := e.SwapIn(hc); err != nil {
			t.Fatal(err)
		}
		assertBitExact(t, hc, want)
		if err := e.Free(hc); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSwapOutMutateFallbackToResident drives the mutate path into the
// no-host-room fallback: with both allocations refused, the swap must
// abort back to Resident with the device payload intact, discarding the
// mutated copy and the pristine original without mixing them up.
func TestSwapOutMutateFallbackToResident(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Site: faultinject.SiteTransferOut, Mode: faultinject.Corrupt})
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   256, // nothing fits: compressed and raw retries both fail
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	tn := tensor.NewGenerator(30).Uniform(30000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("cramped", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err == nil {
		t.Fatal("swap-out succeeded into a 256-byte host pool")
	}
	if h.State() != Resident {
		t.Fatalf("state %v after aborted swap, want Resident", h.State())
	}
	assertBitExact(t, h, want)
}

// TestPoolRunDemotePromoteRoundTrip exercises the block-pool side of the
// tier: stored runs demote under pressure and batch swap-ins promote them
// transparently, bit-exact.
func TestPoolRunDemotePromoteRoundTrip(t *testing.T) {
	e, ts := newTierExecutor(t, 64<<20, 64<<20, 16<<20, nil)
	p, err := e.RegisterBlockPool("kv", 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 16)
	var want []float32
	for i := range all {
		all[i] = i
		want = append(want, blockFill(i, 256)...)
	}
	if err := p.WriteBlocks(all, want); err != nil {
		t.Fatal(err)
	}
	if err := p.SwapOutBlocks(all, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	runs := p.storedRuns()
	if len(runs) != 1 {
		t.Fatalf("stored runs = %d, want 1 coalesced run", len(runs))
	}
	if err := p.demoteRun(runs[0].pr); err != nil {
		t.Fatal(err)
	}
	if e.TierUsed() == 0 || ts.Len() != 1 {
		t.Fatalf("tier holds %d bytes / %d blobs after run demotion", e.TierUsed(), ts.Len())
	}
	if len(p.storedRuns()) != 0 {
		t.Fatal("tiered run still offered as a demotion candidate")
	}
	// Re-demoting a stale snapshot is a silent no-op.
	if err := p.demoteRun(runs[0].pr); err != nil {
		t.Fatalf("stale re-demote: %v", err)
	}
	if err := p.SwapInBlocks(all); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadBlocks(all)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("block payload mismatch at %d", i)
		}
	}
	if e.TierUsed() != 0 || ts.Len() != 0 {
		t.Fatalf("tier not drained after batch promotion: %d bytes", e.TierUsed())
	}
	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolFreeReleasesTieredRuns pins Free() cleanup: tiered runs leave
// the tier store with the pool instead of leaking blobs on disk.
func TestPoolFreeReleasesTieredRuns(t *testing.T) {
	e, ts := newTierExecutor(t, 64<<20, 64<<20, 16<<20, nil)
	p, err := e.RegisterBlockPool("kv", 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3}
	if err := p.WriteBlocks(ids, blockFill(1, 4*256)); err != nil {
		t.Fatal(err)
	}
	if err := p.SwapOutBlocks(ids, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	for _, c := range p.storedRuns() {
		if err := p.demoteRun(c.pr); err != nil {
			t.Fatal(err)
		}
	}
	if ts.Len() == 0 {
		t.Fatal("no runs demoted")
	}
	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
	if e.TierUsed() != 0 || ts.Len() != 0 {
		t.Fatalf("pool free left %d bytes / %d blobs in the tier", e.TierUsed(), ts.Len())
	}
}
