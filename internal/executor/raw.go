package executor

import (
	"encoding/binary"
	"math"

	"cswap/internal/devmem"
)

// rawEncode serialises a tensor to little-endian bytes for an uncompressed
// swap, drawing the buffer from the cache (the cudaMallocHost-avoidance
// optimisation).
func rawEncode(data []float32, cache *devmem.Cache) []byte {
	buf := cache.Get(len(data) * 4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return buf
}

// rawDecode reverses rawEncode.
func rawDecode(buf []byte) []float32 {
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

func floatBits(v float32) uint32 { return math.Float32bits(v) }
