package executor

import (
	"encoding/binary"
	"math"

	"cswap/internal/devmem"
)

// rawEncode serialises a tensor to little-endian bytes for an uncompressed
// swap, drawing the buffer from the cache (the cudaMallocHost-avoidance
// optimisation).
func rawEncode(data []float32, cache *devmem.Cache) []byte {
	buf := cache.Get(len(data) * 4)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return buf
}

// rawDecodeInto reverses rawEncode into the caller-owned dst; buf must hold
// exactly 4·len(dst) bytes. Every element is written, so a dirty recycled
// destination is fully overwritten.
func rawDecodeInto(dst []float32, buf []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
}

func floatBits(v float32) uint32 { return math.Float32bits(v) }
