package executor

import (
	"fmt"

	"cswap/internal/compress"
	"cswap/internal/dnn"
	"cswap/internal/sparsity"
	"cswap/internal/swap"
	"cswap/internal/tensor"
)

// IterationReport summarises one functional training iteration.
type IterationReport struct {
	Epoch      int
	Tensors    int
	Compressed int
	// RawBytes / MovedBytes for this iteration only.
	RawBytes, MovedBytes int64
	// PeakDeviceBytes is the device pool's high-water mark — the memory
	// relief swapping buys.
	PeakDeviceBytes int64
	// MeanSparsity is the average realized sparsity of the generated
	// activations.
	MeanSparsity float64
}

// Ratio returns moved/raw for the iteration.
func (r *IterationReport) Ratio() float64 {
	if r.RawBytes == 0 {
		return 1
	}
	return float64(r.MovedBytes) / float64(r.RawBytes)
}

// RunIteration executes one training iteration *functionally*: for every
// swappable tensor of the model it synthesises a real activation at the
// epoch's sparsity, registers it in device memory, swaps it out per the
// plan (through the real codecs when the plan compresses), then replays the
// backward pass — swapping every tensor back in, verifying it bit-exactly,
// and freeing it. scaleDiv divides tensor sizes so multi-GB workloads run
// in test-sized memory; the plan's structure is unchanged.
func RunIteration(e *Executor, m *dnn.Model, plan *swap.Plan, sp *sparsity.Profile, epoch int, scaleDiv int, seed int64) (*IterationReport, error) {
	tensors := m.SwapTensors()
	if len(plan.Tensors) != len(tensors) {
		return nil, fmt.Errorf("executor: plan covers %d tensors, model has %d",
			len(plan.Tensors), len(tensors))
	}
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	gen := tensor.NewGenerator(seed)
	report := &IterationReport{Epoch: epoch, Tensors: len(tensors)}
	statsBefore := e.Stats()

	// Forward: produce each activation, then swap it out to free device
	// memory for the next layer.
	handles := make([]*Handle, len(tensors))
	var sparSum float64
	for k, st := range tensors {
		size := int(st.Bytes) / scaleDiv
		if size < 128 {
			size = 128
		}
		s := sp.Sparsity(k, epoch)
		act := gen.SizedUniform(size, s)
		sparSum += act.Sparsity()
		h, err := e.Register(st.Name, act)
		if err != nil {
			return nil, fmt.Errorf("executor: forward %s: %w", st.Name, err)
		}
		handles[k] = h
		tp := plan.Tensors[k]
		alg := tp.Alg
		if alg == 0 {
			alg = compress.ZVC
		}
		if err := e.SwapOut(h, tp.Compress, alg); err != nil {
			return nil, fmt.Errorf("executor: swap out %s: %w", st.Name, err)
		}
	}
	report.MeanSparsity = sparSum / float64(len(tensors))

	// Backward: consume activations in reverse, restoring each from host
	// memory and releasing it after use.
	for k := len(tensors) - 1; k >= 0; k-- {
		h := handles[k]
		if err := e.SwapIn(h); err != nil {
			return nil, fmt.Errorf("executor: swap in %s: %w", h.Name(), err)
		}
		if _, err := h.Data(); err != nil {
			return nil, err
		}
		if err := e.Free(h); err != nil {
			return nil, fmt.Errorf("executor: free %s: %w", h.Name(), err)
		}
	}

	statsAfter := e.Stats()
	report.Compressed = statsAfter.CompressedTensors - statsBefore.CompressedTensors
	report.RawBytes = statsAfter.RawBytes - statsBefore.RawBytes
	report.MovedBytes = statsAfter.MovedBytes - statsBefore.MovedBytes
	report.PeakDeviceBytes = e.DeviceStats().Peak
	return report, nil
}

// MinDeviceCapacity returns a device-pool size sufficient for RunIteration
// at the given scale: the two largest scaled tensors plus slack (one being
// produced while the previous one drains).
func MinDeviceCapacity(m *dnn.Model, scaleDiv int) int64 {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	var first, second int64
	for _, st := range m.SwapTensors() {
		s := st.Bytes / int64(scaleDiv)
		if s > first {
			first, second = s, first
		} else if s > second {
			second = s
		}
	}
	return first + second + (1 << 16)
}

// HostCapacityFor returns a pinned-pool size sufficient to hold every
// scaled tensor uncompressed simultaneously (the worst case of an
// all-raw plan).
func HostCapacityFor(m *dnn.Model, scaleDiv int) int64 {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	var total int64
	for _, st := range m.SwapTensors() {
		total += st.Bytes/int64(scaleDiv) + (1 << 12)
	}
	return total + (1 << 20)
}
