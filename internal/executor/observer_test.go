package executor

import (
	"sort"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/metrics"
	"cswap/internal/tensor"
)

func newObservedExecutor(t *testing.T, obs *metrics.Observer) *Executor {
	t.Helper()
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Launch:         compress.Launch{Grid: 16, Block: 64},
		Verify:         true,
		Observer:       obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestObserverSeesSwapTraffic(t *testing.T) {
	obs := metrics.NewObserver()
	var events []metrics.Event
	obs.OnEvent = func(ev metrics.Event) { events = append(events, ev) }
	e := newObservedExecutor(t, obs)

	tn := tensor.NewGenerator(1).Uniform(50000, 0.6)
	h, err := e.Register("ReLU1", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}

	snap := obs.Metrics.Snapshot()
	if v, ok := snap.Counter("executor_swap_outs_total"); !ok || v != 1 {
		t.Fatalf("executor_swap_outs_total = %v, %v", v, ok)
	}
	if v, ok := snap.Counter("executor_swap_ins_total"); !ok || v != 1 {
		t.Fatalf("executor_swap_ins_total = %v, %v", v, ok)
	}
	moved, ok := snap.Counter("executor_moved_bytes_by_codec_total", metrics.L("codec", "ZVC"))
	if !ok || moved <= 0 || moved >= float64(h.Bytes()) {
		t.Fatalf("per-codec moved bytes = %v, %v (raw %d)", moved, ok, h.Bytes())
	}

	// The legacy Stats view and the registry must agree.
	st := e.Stats()
	if st.SwapOuts != 1 || st.SwapIns != 1 || st.CompressedTensors != 1 {
		t.Fatalf("stats view diverged from registry: %+v", st)
	}
	if int64(moved) != st.MovedBytes {
		t.Fatalf("per-codec bytes %v != Stats.MovedBytes %d", moved, st.MovedBytes)
	}

	// Both legs landed as spans on the observer's timeline.
	streams := obs.Trace.Streams()
	sort.Strings(streams)
	want := []string{"swap-in", "swap-out"}
	if len(streams) != 2 || streams[0] != want[0] || streams[1] != want[1] {
		t.Fatalf("trace streams = %v, want %v", streams, want)
	}
	if len(events) != 0 {
		t.Fatalf("clean round trip emitted events: %v", events)
	}
}

func TestObserverEmitsFallbackEvent(t *testing.T) {
	obs := metrics.NewObserver()
	var events []metrics.Event
	obs.OnEvent = func(ev metrics.Event) { events = append(events, ev) }
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Launch:         compress.Launch{Grid: 16, Block: 64},
		Verify:         true,
		Observer:       obs,
		Faults: faultinject.New(faultinject.Fault{
			Site: faultinject.SiteEncode, Mode: faultinject.Fail,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	tn := tensor.NewGenerator(3).Uniform(20000, 0.6)
	h, err := e.Register("victim", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatalf("encode failure must degrade, not error: %v", err)
	}

	snap := obs.Metrics.Snapshot()
	if v, ok := snap.Counter("executor_fallbacks_total", metrics.L("site", "encode")); !ok || v != 1 {
		t.Fatalf("encode fallback counter = %v, %v", v, ok)
	}
	// The raw fallback's bytes land under codec="raw".
	if v, ok := snap.Counter("executor_moved_bytes_by_codec_total", metrics.L("codec", "raw")); !ok || int64(v) != h.Bytes() {
		t.Fatalf("raw-codec moved bytes = %v, %v (want %d)", v, ok, h.Bytes())
	}
	found := false
	for _, ev := range events {
		if ev.Name == "executor.fallback" && ev.Attrs["tensor"] == "victim" && ev.Attrs["site"] == "encode" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no executor.fallback event for the degraded swap: %v", events)
	}
}

// BenchmarkSwapHotPath measures the unobserved swap round trip — the
// configuration the ~zero-cost-nil-Observer contract is about. Allocations
// here come from the codec and pool paths, not the metrics layer: the
// executor's counters are pre-resolved atomics.
func BenchmarkSwapHotPath(b *testing.B) {
	e, err := New(Config{
		DeviceCapacity: 1 << 24,
		HostCapacity:   1 << 24,
		Launch:         compress.Launch{Grid: 16, Block: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	tn := tensor.NewGenerator(1).Uniform(16384, 0.6)
	h, err := e.Register("bench", tn)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			b.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapHotPathObserved is the same loop with a full Observer
// attached — the price of deep instrumentation, for comparison against
// BenchmarkSwapHotPath.
func BenchmarkSwapHotPathObserved(b *testing.B) {
	e, err := New(Config{
		DeviceCapacity: 1 << 24,
		HostCapacity:   1 << 24,
		Launch:         compress.Launch{Grid: 16, Block: 64},
		Observer:       metrics.NewObserver(),
	})
	if err != nil {
		b.Fatal(err)
	}
	tn := tensor.NewGenerator(1).Uniform(16384, 0.6)
	h, err := e.Register("bench", tn)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			b.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			b.Fatal(err)
		}
	}
}
