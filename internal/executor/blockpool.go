package executor

// Block pools: the paged KV-cache layout for the LLM-serving workload
// class. Where Register gives each tensor its own device reservation, a
// BlockPool carves ONE reservation into numBlocks fixed-size blocks of
// blockElems float32s — the paged layout inference engines give their KV
// caches — and the batch operations move *lists* of block IDs per call.
//
// The batch ops sort and dedup the requested IDs and merge contiguous
// runs (swiftLLM's block_swapping names exactly this merge as its own
// future work): source and destination of a run are both sequential
// memory, so one codec/pool operation per RUN replaces one per block —
// the cDMA amortization that makes compressed swapping pay off at small
// granularity. Each run rides the existing async ticket pipeline (one
// bounded-window slot per run), so runs within a batch overlap exactly
// like independent tensor swaps.
//
// State machine: every block carries the same State values as a Handle
// (Resident / Swapped / SwappingOut / SwappingIn), guarded by one
// per-pool mutex. A batch claims ALL its target blocks atomically before
// submitting any run — a batch either starts whole or fails whole with
// the first offending block's error — and each run commits or rolls back
// only its own blocks. The stored run is the restore granularity: a
// swap-in that requests any block of a stored run restores the whole run
// (the blocks were encoded as one blob; decoding it is one operation
// either way).
//
// Unlike a tensor handle, the pool's device reservation is permanent: a
// paged KV region is allocated once for the serving engine's lifetime,
// and swapped-out blocks' physical slots are the engine's to reuse. What
// the batch ops move is block *contents*; host-pool bytes are charged per
// stored run while it is swapped.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"cswap/internal/compress"
	"cswap/internal/devmem"
	"cswap/internal/faultinject"
)

// CoalesceBlockIDs sorts ids, drops duplicates, and merges contiguous
// runs — the pure coalescing rule both the executor and the simulator
// score by. A nil/empty input returns nil.
func CoalesceBlockIDs(ids []int) []BlockRun {
	if len(ids) == 0 {
		return nil
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	runs := make([]BlockRun, 0, 4)
	runs = append(runs, BlockRun{Start: sorted[0], Count: 1})
	for _, id := range sorted[1:] {
		last := &runs[len(runs)-1]
		switch id {
		case last.Start + last.Count - 1: // duplicate
		case last.Start + last.Count:
			last.Count++
		default:
			runs = append(runs, BlockRun{Start: id, Count: 1})
		}
	}
	return runs
}

// BlockRun is one contiguous run of block IDs: Count blocks starting at
// Start. It is the unit of codec and pool work in a batch.
type BlockRun struct {
	Start, Count int
}

// BlockPool is one named paged block region: a single device reservation
// divided into fixed-size blocks, addressed by ID.
type BlockPool struct {
	e          *Executor
	id         int
	name       string
	blockElems int
	numBlocks  int
	devBlock   *devmem.Block
	data       []float32 // the whole region; block i is [i*blockElems, (i+1)*blockElems)

	// mu guards the per-block state vector and run map. Run payload fields
	// are owned exclusively by the operation holding the transitional
	// state, like a Handle's storage.
	mu    sync.Mutex
	state []State
	run   []*poolRun // per block: the stored run holding it while Swapped
	freed bool
}

// poolRun is one stored (swapped-out) run: the encoded blob for Count
// blocks starting at Start, plus its host-pool accounting. A tiered run's
// blob lives in the disk spill tier (blob and hostBlock are nil);
// swappedAt and rawB feed the demotion ranking.
type poolRun struct {
	start, count int
	blob         []byte
	hostBlock    *devmem.Block
	alg          compress.Algorithm
	compressed   bool
	checksum     uint64
	tiered       bool
	rawB         int64
	swappedAt    float64
}

// RegisterBlockPool reserves numBlocks fixed-size blocks of blockElems
// float32s as one device allocation. It fails with devmem.ErrOutOfMemory
// when the device pool cannot hold the region and ErrClosed after Close.
func (e *Executor) RegisterBlockPool(name string, blockElems, numBlocks int) (*BlockPool, error) {
	if blockElems <= 0 || numBlocks <= 0 {
		return nil, fmt.Errorf("executor: block pool %s: geometry %d elems x %d blocks must be positive",
			name, blockElems, numBlocks)
	}
	total := int64(blockElems) * int64(numBlocks) * 4
	block, err := e.device.Alloc(total)
	if err != nil {
		return nil, err
	}
	p := &BlockPool{
		e:          e,
		name:       name,
		blockElems: blockElems,
		numBlocks:  numBlocks,
		devBlock:   block,
		data:       make([]float32, blockElems*numBlocks),
		state:      make([]State, numBlocks),
		run:        make([]*poolRun, numBlocks),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = block.Free()
		return nil, fmt.Errorf("%w: register block pool %s", ErrClosed, name)
	}
	e.nextID++
	p.id = e.nextID
	e.pools[p.id] = p
	e.mu.Unlock()
	return p, nil
}

// Name returns the pool's registration name.
func (p *BlockPool) Name() string { return p.name }

// BlockElems returns the per-block element count.
func (p *BlockPool) BlockElems() int { return p.blockElems }

// NumBlocks returns the pool size in blocks.
func (p *BlockPool) NumBlocks() int { return p.numBlocks }

// Bytes returns the pool's device reservation size.
func (p *BlockPool) Bytes() int64 { return int64(p.blockElems) * int64(p.numBlocks) * 4 }

// BlockHandle is a lightweight per-block view into a pool — the paged
// analogue of a tensor Handle, for callers that track residency block by
// block.
type BlockHandle struct {
	pool *BlockPool
	id   int
}

// Handle returns the per-block handle for one block ID.
func (p *BlockPool) Handle(id int) (BlockHandle, error) {
	if id < 0 || id >= p.numBlocks {
		return BlockHandle{}, fmt.Errorf("executor: block pool %s: block %d out of range [0,%d)", p.name, id, p.numBlocks)
	}
	return BlockHandle{pool: p, id: id}, nil
}

// Pool returns the owning pool.
func (h BlockHandle) Pool() *BlockPool { return h.pool }

// ID returns the block's index in its pool.
func (h BlockHandle) ID() int { return h.id }

// State returns the block's current storage state.
func (h BlockHandle) State() State { return h.pool.BlockState(h.id) }

// BlockState returns one block's current storage state (Freed once the
// pool itself is freed).
func (p *BlockPool) BlockState(id int) State {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return Freed
	}
	return p.state[id]
}

// SwappedIDs returns the IDs of currently swapped-out blocks, ascending —
// the work list a migration (or a restore-everything drain) walks.
func (p *BlockPool) SwappedIDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []int
	for i, st := range p.state {
		if st == Swapped {
			ids = append(ids, i)
		}
	}
	return ids
}

// checkIDs validates a strictly-ascending unique ID list against the pool
// bounds — the shape WriteBlocks and ReadBlocks require, because it gives
// the packed data buffer an unambiguous layout.
func (p *BlockPool) checkIDs(ids []int) error {
	for i, id := range ids {
		if id < 0 || id >= p.numBlocks {
			return fmt.Errorf("executor: block pool %s: block %d out of range [0,%d)", p.name, id, p.numBlocks)
		}
		if i > 0 && id <= ids[i-1] {
			return fmt.Errorf("executor: block pool %s: block IDs must be strictly ascending (%d after %d)",
				p.name, id, ids[i-1])
		}
	}
	return nil
}

// WriteBlocks stores packed block contents: data holds len(ids) blocks
// back to back, in the order of the strictly-ascending ID list. Every
// target block must be Resident (a swapped or in-flight block refuses —
// its stored copy would silently diverge from the device copy).
func (p *BlockPool) WriteBlocks(ids []int, data []float32) error {
	if err := p.checkIDs(ids); err != nil {
		return err
	}
	if len(data) != len(ids)*p.blockElems {
		return fmt.Errorf("executor: block pool %s: %d blocks need %d elements, got %d",
			p.name, len(ids), len(ids)*p.blockElems, len(data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return fmt.Errorf("%w: block pool %s", ErrFreed, p.name)
	}
	for _, id := range ids {
		if st := p.state[id]; st != Resident {
			return p.blockStateErr(id, st)
		}
	}
	for i, id := range ids {
		copy(p.data[id*p.blockElems:(id+1)*p.blockElems], data[i*p.blockElems:(i+1)*p.blockElems])
	}
	return nil
}

// ReadBlocks returns packed block contents for a strictly-ascending ID
// list. Every block must be Resident; swap the batch in first.
func (p *BlockPool) ReadBlocks(ids []int) ([]float32, error) {
	if err := p.checkIDs(ids); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return nil, fmt.Errorf("%w: block pool %s", ErrFreed, p.name)
	}
	for _, id := range ids {
		if st := p.state[id]; st != Resident {
			return nil, p.blockStateErr(id, st)
		}
	}
	out := make([]float32, len(ids)*p.blockElems)
	for i, id := range ids {
		copy(out[i*p.blockElems:(i+1)*p.blockElems], p.data[id*p.blockElems:(id+1)*p.blockElems])
	}
	return out, nil
}

// blockStateErr maps a block's offending state onto the executor error
// taxonomy. Caller holds p.mu.
func (p *BlockPool) blockStateErr(id int, st State) error {
	switch st {
	case SwappingOut, SwappingIn:
		p.e.ins.busyRejections.Inc()
		return fmt.Errorf("%w: %s block %d (%s in flight)", ErrBusy, p.name, id, st)
	case Swapped:
		return fmt.Errorf("%w: %s block %d already swapped out", ErrNotResident, p.name, id)
	case Resident:
		return fmt.Errorf("%w: %s block %d already resident", ErrNotSwapped, p.name, id)
	}
	return fmt.Errorf("executor: %s block %d in unexpected state %s", p.name, id, st)
}

// SwapOutBlocks moves the listed blocks' contents to the host pool and
// waits: IDs are coalesced into contiguous runs, each run is encoded and
// stored as one operation on the async pipeline, and runs overlap within
// the bounded in-flight window. Per-run failure semantics match SwapOut
// (encode and compressed-alloc failures degrade to raw; only a raw-path
// allocation failure surfaces, with that run's blocks left Resident).
func (p *BlockPool) SwapOutBlocks(ids []int, doCompress bool, alg compress.Algorithm) error {
	return p.SwapOutBlocksCtx(context.Background(), ids, doCompress, alg).Wait()
}

// SwapOutBlocksCtx is SwapOutBlocks as a pipeline stage: the returned
// Ticket resolves when every run has committed. The context governs slot
// acquisition for not-yet-submitted runs; already-running runs always
// finish and commit.
func (p *BlockPool) SwapOutBlocksCtx(ctx context.Context, ids []int, doCompress bool, alg compress.Algorithm) *Ticket {
	runs := CoalesceBlockIDs(ids)
	t := newTicket("batch-swap-out", p.name)
	if err := p.claimRuns(runs, Resident, SwappingOut); err != nil {
		t.complete(err)
		return t
	}
	if len(runs) == 0 {
		t.complete(nil)
		return t
	}
	p.e.observeBatch(len(ids), runs)
	p.submitRuns(ctx, t, runs, SwappingOut, func(r BlockRun) error {
		return p.swapOutRun(r, doCompress, alg)
	})
	return t
}

// SwapInBlocks restores the listed blocks' contents from the host pool
// and waits. Already-resident blocks are skipped (idempotent restore);
// restore granularity is the stored run, so requesting any block of a
// stored run restores the whole run.
func (p *BlockPool) SwapInBlocks(ids []int) error {
	return p.SwapInBlocksCtx(context.Background(), ids).Wait()
}

// SwapInBlocksCtx is SwapInBlocks as a pipeline stage; see
// SwapOutBlocksCtx for ticket and context semantics.
func (p *BlockPool) SwapInBlocksCtx(ctx context.Context, ids []int) *Ticket {
	return p.swapInCtx(ctx, "batch-swap-in", ids)
}

// PrefetchBlocks requests residency for the listed blocks ahead of need
// and returns immediately with the batch's aggregate ticket. It is
// SwapInBlocksCtx under a prefetch label: already-resident blocks
// complete without work, and tier-resident runs are staged back into the
// host pool first (read-ahead), so a failed or shed prefetch still leaves
// the later demand swap-in a host-memory read instead of a disk fault.
func (p *BlockPool) PrefetchBlocks(ids []int) *Ticket {
	return p.PrefetchBlocksCtx(context.Background(), ids)
}

// PrefetchBlocksCtx is PrefetchBlocks with deadline-aware slot acquisition
// and scheduling-hint propagation: a speculative sched.Hint on ctx makes
// the batch sheddable at run boundaries (ErrShed) while a critical waiter
// is starved.
func (p *BlockPool) PrefetchBlocksCtx(ctx context.Context, ids []int) *Ticket {
	return p.swapInCtx(ctx, "batch-prefetch", ids)
}

// swapInCtx is the shared batch swap-in/prefetch body: collect the stored
// runs intersecting the requested IDs, claim their blocks atomically, and
// submit one restore per run.
func (p *BlockPool) swapInCtx(ctx context.Context, op string, ids []int) *Ticket {
	t := newTicket(op, p.name)
	reqRuns := CoalesceBlockIDs(ids)
	if err := p.validateRuns(reqRuns); err != nil {
		t.complete(err)
		return t
	}

	// Claim phase, atomic under p.mu: every requested block must be
	// Resident (skip) or Swapped (restore via its stored run); any
	// in-flight block fails the whole batch before it starts.
	p.mu.Lock()
	if p.freed {
		p.mu.Unlock()
		t.complete(fmt.Errorf("%w: block pool %s", ErrFreed, p.name))
		return t
	}
	var stored []*poolRun
	seen := map[*poolRun]bool{}
	for _, r := range reqRuns {
		for id := r.Start; id < r.Start+r.Count; id++ {
			switch p.state[id] {
			case Resident:
			case Swapped:
				if pr := p.run[id]; !seen[pr] {
					seen[pr] = true
					stored = append(stored, pr)
				}
			default:
				err := p.blockStateErr(id, p.state[id])
				p.mu.Unlock()
				t.complete(err)
				return t
			}
		}
	}
	for _, pr := range stored {
		for id := pr.start; id < pr.start+pr.count; id++ {
			p.state[id] = SwappingIn
		}
	}
	p.mu.Unlock()

	if len(stored) == 0 {
		t.complete(nil)
		return t
	}
	runs := make([]BlockRun, len(stored))
	for i, pr := range stored {
		runs[i] = BlockRun{Start: pr.start, Count: pr.count}
	}
	p.e.observeBatch(len(ids), runs)
	p.submitRuns(ctx, t, runs, SwappingIn, func(r BlockRun) error {
		p.mu.Lock()
		pr := p.run[r.Start]
		p.mu.Unlock()
		if op == "batch-prefetch" {
			p.stageRunFromTier(pr)
		}
		return p.swapInRun(pr)
	})
	return t
}

// claimRuns atomically moves every block of every run from `from` to
// `to`, or changes nothing and returns the first offending block's error.
func (p *BlockPool) claimRuns(runs []BlockRun, from, to State) error {
	if err := p.validateRuns(runs); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return fmt.Errorf("%w: block pool %s", ErrFreed, p.name)
	}
	for _, r := range runs {
		for id := r.Start; id < r.Start+r.Count; id++ {
			if p.state[id] != from {
				return p.blockStateErr(id, p.state[id])
			}
		}
	}
	for _, r := range runs {
		for id := r.Start; id < r.Start+r.Count; id++ {
			p.state[id] = to
		}
	}
	return nil
}

// rollbackRuns reverts claimed-but-never-run blocks to their prior state.
func (p *BlockPool) rollbackRuns(runs []BlockRun, to State) {
	p.mu.Lock()
	for _, r := range runs {
		for id := r.Start; id < r.Start+r.Count; id++ {
			p.state[id] = to
		}
	}
	p.mu.Unlock()
}

// validateRuns bounds-checks coalesced runs against the pool. Runs come
// from CoalesceBlockIDs, so checking the first start and each end
// suffices.
func (p *BlockPool) validateRuns(runs []BlockRun) error {
	for _, r := range runs {
		if r.Start < 0 || r.Start+r.Count > p.numBlocks {
			return fmt.Errorf("executor: block pool %s: run [%d,+%d) out of range [0,%d)",
				p.name, r.Start, r.Count, p.numBlocks)
		}
	}
	return nil
}

// submitRuns dispatches one pipeline operation per claimed run and wires
// the aggregate ticket: it resolves with the first run error (nil when
// all commit) once every run has committed or rolled back. Submission
// happens in the caller's goroutine, so a full in-flight window applies
// the same backpressure as submitAsync; if the gate refuses mid-batch
// (closed executor, dead context), the not-yet-submitted runs roll back
// to `claimed`'s source state and the refusal joins the aggregate error.
// Each run boundary also consults the scheduler's shed signal: a batch
// whose context carries a speculative sched.Hint yields its remaining
// runs with ErrShed while a critical waiter is starved — the mid-batch
// preemption point that keeps a long speculative prefetch from holding
// the window against latency-critical work.
func (p *BlockPool) submitRuns(ctx context.Context, t *Ticket, runs []BlockRun, claimed State, body func(BlockRun) error) {
	e := p.e
	e.ins.asyncSubmitted(t.op).Add(float64(len(runs)))
	rollbackTo := Resident
	if claimed == SwappingIn {
		rollbackTo = Swapped
	}
	children := make([]*Ticket, 0, len(runs))
	var submitErr error
	for i, r := range runs {
		if e.shedHint(ctx) {
			p.rollbackRuns(runs[i:], rollbackTo)
			e.shedPreempt(len(runs) - i)
			submitErr = fmt.Errorf("executor: %s %s: %w", t.op, p.name, ErrShed)
			break
		}
		waited, err := e.gate.acquire(ctx)
		if err != nil {
			p.rollbackRuns(runs[i:], rollbackTo)
			submitErr = fmt.Errorf("executor: %s %s: %w", t.op, p.name, err)
			break
		}
		if waited {
			e.ins.asyncBackpressure.Inc()
		}
		run := r
		ct := newTicket(t.op, p.name)
		children = append(children, ct)
		compress.Go(func() {
			ct.complete(body(run)) // commits or rolls back the run's blocks
			e.gate.release()
		})
	}
	go func() {
		err := submitErr
		for _, ct := range children {
			if cerr := ct.Wait(); cerr != nil && err == nil {
				err = cerr
			}
		}
		t.complete(err)
	}()
}

// swapOutRun encodes and stores one contiguous run. The blocks are
// claimed SwappingOut; commit publishes the stored run and marks them
// Swapped, rollback returns them to Resident with the device copy intact.
func (p *BlockPool) swapOutRun(r BlockRun, doCompress bool, alg compress.Algorithm) error {
	e := p.e
	inj := e.cfg.Faults
	src := p.data[r.Start*p.blockElems : (r.Start+r.Count)*p.blockElems]
	compressed := doCompress
	var blob []byte
	if doCompress {
		b, err := e.arenaEncode(alg, src)
		if err != nil {
			compressed = false
			e.ins.encodeFallbacks.Inc()
		} else {
			blob = b
		}
	}
	if !compressed {
		blob = rawEncode(src, e.cache)
	}
	// Ownership mirrors swapOut: the pristine encode output stays owned by
	// this operation until the run resolves, and a fault-injected transfer
	// copy is discarded to the arena like swap-in's transient copies.
	var pristine []byte
	pristineCompressed := false
	if mutated, ok := inj.MutateBlob(faultinject.SiteTransferOut, blob); ok {
		pristine, pristineCompressed = blob, compressed
		blob = mutated
	}
	discard := func(b []byte, comp bool) {
		if pristine != nil {
			e.arena.put(b)
		} else {
			e.recycleBlob(b, comp)
		}
	}
	settle := func() {
		if pristine != nil {
			e.recycleBlob(pristine, pristineCompressed)
			pristine = nil
		}
	}
	hostBlock, err := e.host.Alloc(int64(len(blob)))
	if err != nil && e.freeHostSpace(int64(len(blob))) {
		// Host pressure with a spill tier: demote cold payloads and retry.
		hostBlock, err = e.host.Alloc(int64(len(blob)))
	}
	if err != nil && compressed {
		raw := rawEncode(src, e.cache)
		rawBlock, rerr := e.host.Alloc(int64(len(raw)))
		if rerr != nil && e.freeHostSpace(int64(len(raw))) {
			rawBlock, rerr = e.host.Alloc(int64(len(raw)))
		}
		if rerr != nil {
			e.cache.Put(raw)
			discard(blob, compressed)
			settle()
			p.rollbackRuns([]BlockRun{r}, Resident)
			return fmt.Errorf("executor: host pool: %w", err)
		}
		discard(blob, compressed)
		settle()
		compressed = false
		e.ins.allocFallbacks.Inc()
		blob, hostBlock, err = raw, rawBlock, nil
	}
	if err != nil {
		discard(blob, compressed)
		settle()
		p.rollbackRuns([]BlockRun{r}, Resident)
		return fmt.Errorf("executor: host pool: %w", err)
	}
	settle()
	pr := &poolRun{
		start: r.Start, count: r.Count,
		blob: blob, hostBlock: hostBlock,
		alg: alg, compressed: compressed,
		checksum:  checksum(src),
		rawB:      int64(len(src)) * 4,
		swappedAt: e.sinceEpoch(),
	}
	p.mu.Lock()
	for id := r.Start; id < r.Start+r.Count; id++ {
		p.state[id] = Swapped
		p.run[id] = pr
	}
	p.mu.Unlock()
	e.ins.swapOuts.Inc()
	e.ins.rawBytes.Add(float64(len(src) * 4))
	e.ins.movedBytes.Add(float64(len(blob)))
	if compressed {
		e.ins.compressed.Inc()
	}
	return nil
}

// swapInRun restores one stored run into the pool's device region,
// decoding (and verifying) with the same retained-blob retry semantics as
// a tensor swap-in: a recoverable first-attempt failure retries once from
// the stored blob, and any surfaced failure leaves the run cleanly
// Swapped with its blob intact — retry-safe, never silently wrong data.
func (p *BlockPool) swapInRun(pr *poolRun) error {
	e := p.e
	inj := e.cfg.Faults
	dst := p.data[pr.start*p.blockElems : (pr.start+pr.count)*p.blockElems]
	// A tiered run promotes from disk first; the in-memory copy plays the
	// retained blob's role below, and any failure rolls back with the run
	// still tiered and its committed tier entry intact.
	blob := pr.blob
	fromTier := false
	if pr.tiered {
		b, terr := e.promoteReadKey(p.runTierKey(pr))
		if terr != nil {
			p.rollbackRuns([]BlockRun{{Start: pr.start, Count: pr.count}}, Swapped)
			return fmt.Errorf("executor: restore %s run [%d,+%d): %w", p.name, pr.start, pr.count, terr)
		}
		blob = b
		fromTier = true
	}
	launch := e.Launch()
	decode := func(blob []byte) error {
		if pr.compressed {
			return compress.ParallelDecodeIntoWith(dst, blob, launch, e.hooks)
		}
		if len(blob) != len(dst)*4 {
			return fmt.Errorf("%w: raw blob is %d bytes, want %d",
				compress.ErrTruncated, len(blob), len(dst)*4)
		}
		rawDecodeInto(dst, blob)
		return nil
	}
	check := func() error {
		if e.cfg.Verify && checksum(dst) != pr.checksum {
			return fmt.Errorf("%w: %s run [%d,+%d)", ErrVerification, p.name, pr.start, pr.count)
		}
		return nil
	}
	transfer, transient := inj.MutateBlob(faultinject.SiteTransferIn, blob)
	derr := decode(transfer)
	if derr == nil {
		derr = check()
	}
	retried, recovered := false, false
	if derr != nil && retryable(derr, transient) {
		retried = true
		if rerr := decode(blob); rerr != nil {
			derr = rerr
		} else if rerr = check(); rerr != nil {
			derr = rerr
		} else {
			derr, recovered = nil, true
		}
	}
	if transient {
		e.arena.put(transfer)
	}
	if retried {
		e.ins.decodeRetries.Inc()
	}
	if derr != nil {
		p.rollbackRuns([]BlockRun{{Start: pr.start, Count: pr.count}}, Swapped)
		return fmt.Errorf("executor: restore %s run [%d,+%d): %w", p.name, pr.start, pr.count, derr)
	}
	if pr.hostBlock != nil {
		if err := pr.hostBlock.Free(); err != nil {
			p.rollbackRuns([]BlockRun{{Start: pr.start, Count: pr.count}}, Swapped)
			return fmt.Errorf("executor: restore %s run [%d,+%d): %w", p.name, pr.start, pr.count, err)
		}
	}
	// Tier entries are deleted only after the restore has committed.
	if fromTier {
		_, _ = e.tier.Delete(p.runTierKey(pr))
		pr.tiered = false
		e.ins.tierPromotions.Inc()
		e.ins.tierOccupancy.Set(float64(e.tier.Used()))
	} else {
		e.recycleBlob(pr.blob, pr.compressed)
	}
	p.mu.Lock()
	for id := pr.start; id < pr.start+pr.count; id++ {
		p.state[id] = Resident
		p.run[id] = nil
	}
	p.mu.Unlock()
	e.ins.swapIns.Inc()
	if e.cfg.Verify {
		e.ins.verified.Inc()
	}
	if recovered {
		e.ins.decodeRecoveries.Inc()
	}
	return nil
}

// Free releases the pool: the device reservation and every stored run's
// host bytes. Any block with a swap in flight refuses with ErrBusy — wait
// for the batch tickets, then Free. Freeing twice returns ErrFreed.
func (p *BlockPool) Free() error {
	p.mu.Lock()
	if p.freed {
		p.mu.Unlock()
		return fmt.Errorf("%w: block pool %s", ErrFreed, p.name)
	}
	for id, st := range p.state {
		if st == SwappingOut || st == SwappingIn {
			err := p.blockStateErr(id, st)
			p.mu.Unlock()
			return err
		}
	}
	p.freed = true
	var stored []*poolRun
	seen := map[*poolRun]bool{}
	for _, pr := range p.run {
		if pr != nil && !seen[pr] {
			seen[pr] = true
			stored = append(stored, pr)
		}
	}
	p.mu.Unlock()
	if err := p.devBlock.Free(); err != nil {
		p.mu.Lock()
		p.freed = false
		p.mu.Unlock()
		return err
	}
	for _, pr := range stored {
		if pr.tiered {
			_, _ = p.e.tier.Delete(p.runTierKey(pr))
			p.e.ins.tierOccupancy.Set(float64(p.e.tier.Used()))
			continue
		}
		_ = pr.hostBlock.Free()
		p.e.recycleBlob(pr.blob, pr.compressed)
	}
	e := p.e
	e.mu.Lock()
	delete(e.pools, p.id)
	e.mu.Unlock()
	return nil
}

// runTierKey is a stored run's key in the tier store: pool name, pool ID
// (re-registrations of one name must not collide), and the run's start
// block (unique per stored run at any instant — one stored run per block).
func (p *BlockPool) runTierKey(pr *poolRun) string {
	return fmt.Sprintf("%s#p%d@%d", p.name, p.id, pr.start)
}

// runCandidate is a consistent snapshot of one stored run's demotion
// inputs, taken under p.mu (the poolRun fields themselves may only be
// read by whoever owns the run's transitional state).
type runCandidate struct {
	pr        *poolRun
	blobBytes int64
	rawBytes  int64
	swappedAt float64
}

// storedRuns snapshots the pool's stored, host-resident runs — its
// demotion candidates. Tiered and in-flight runs are excluded.
func (p *BlockPool) storedRuns() []runCandidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed {
		return nil
	}
	var out []runCandidate
	seen := map[*poolRun]bool{}
	for id, pr := range p.run {
		if pr == nil || seen[pr] || pr.tiered || p.state[id] != Swapped {
			continue
		}
		seen[pr] = true
		out = append(out, runCandidate{
			pr:        pr,
			blobBytes: int64(len(pr.blob)),
			rawBytes:  pr.rawB,
			swappedAt: pr.swappedAt,
		})
	}
	return out
}

// demoteRun moves one stored run's blob from the pinned-host pool into
// the disk tier, mirroring Handle demotion: the run's blocks are claimed
// for the move (concurrent batch swap-ins see ErrBusy), the blob commits
// on disk before the host bytes are freed, and the blocks return to
// Swapped with the run marked tiered. A snapshot that aged out — the run
// was restored or replaced since ranking — is skipped without error.
func (p *BlockPool) demoteRun(pr *poolRun) error {
	e := p.e
	if e.tier == nil {
		return ErrNoTier
	}
	r := BlockRun{Start: pr.start, Count: pr.count}
	if err := p.claimRuns([]BlockRun{r}, Swapped, SwappingOut); err != nil {
		return err
	}
	p.mu.Lock()
	stale := p.run[pr.start] != pr
	p.mu.Unlock()
	if stale || pr.tiered {
		p.rollbackRuns([]BlockRun{r}, Swapped)
		return nil
	}
	if _, err := e.tierGate.acquire(context.Background()); err != nil {
		p.rollbackRuns([]BlockRun{r}, Swapped)
		return fmt.Errorf("executor: demote %s run [%d,+%d): %w", p.name, pr.start, pr.count, err)
	}
	defer e.tierGate.release()
	meta := tierMeta{
		RawBytes:   pr.rawB,
		BlobBytes:  int64(len(pr.blob)),
		Compressed: pr.compressed,
		Alg:        pr.alg.String(),
		Elems:      int(pr.rawB / 4),
		Checksum:   pr.checksum,
	}
	if err := e.tier.Put(p.runTierKey(pr), pr.blob, meta); err != nil {
		p.rollbackRuns([]BlockRun{r}, Swapped)
		return fmt.Errorf("executor: demote %s run [%d,+%d): %w", p.name, pr.start, pr.count, err)
	}
	if err := pr.hostBlock.Free(); err != nil {
		_, _ = e.tier.Delete(p.runTierKey(pr))
		p.rollbackRuns([]BlockRun{r}, Swapped)
		return fmt.Errorf("executor: demote %s run [%d,+%d): %w", p.name, pr.start, pr.count, err)
	}
	e.recycleBlob(pr.blob, pr.compressed)
	pr.blob = nil
	pr.hostBlock = nil
	pr.tiered = true
	p.rollbackRuns([]BlockRun{r}, Swapped)
	e.ins.tierDemotions.Inc()
	e.ins.tierOccupancy.Set(float64(e.tier.Used()))
	return nil
}

// observeBatch records one batch's coalescing outcome: how many blocks
// the caller asked for (pre-dedup), how many runs they merged into, and
// the batch size — the "requests and frames, not bytes" win this layout
// exists for.
func (e *Executor) observeBatch(requested int, runs []BlockRun) {
	blocks := 0
	for _, r := range runs {
		blocks += r.Count
	}
	if blocks == 0 {
		return
	}
	e.ins.batchBlocks.Add(float64(blocks))
	e.ins.batchRuns.Add(float64(len(runs)))
	e.ins.batchSize.Observe(float64(requested))
	e.ins.coalesceRatio.Observe(float64(len(runs)) / float64(blocks))
}
