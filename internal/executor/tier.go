package executor

// The executor's tier manager: demotion of cold swapped payloads from the
// pinned-host pool into the disk spill tier (Config.Tier), and transparent
// promotion back on swap-in. Demotion candidates — swapped tensor handles
// and stored block-pool runs — are ranked by costmodel.DemotionScore
// (compression ratio × re-access prediction): well-compressed blobs are
// the cheapest to re-fetch and cold ones the least likely to be needed,
// so they go first. Tier I/O runs under its own bounded in-flight window
// (tierGate), never consuming the foreground swap window's slots.
//
// Ordering rules (the crash-consistency contract, DESIGN.md §15):
//   - demote: tier.Put commits the blob on disk BEFORE the host block is
//     freed — an interrupted demotion leaves the payload host-resident
//     and the tier without a committed entry (at most a *.tmp the store
//     scrubs at Open), never in neither place;
//   - promote: the tier entry is deleted only AFTER the restore commits —
//     a failed promotion leaves the handle Swapped and tiered with the
//     committed entry intact, retry-safe.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"cswap/internal/compress"
	"cswap/internal/costmodel"
	"cswap/internal/tier"
)

// ErrNoTier reports a tier operation on an executor configured without a
// spill tier.
var ErrNoTier = errors.New("executor: no spill tier configured")

// DefaultTierMaxInFlight is the tier I/O window when Config.TierMaxInFlight
// is zero: wide enough to overlap demotion with promotion, narrow enough
// that disk traffic cannot crowd out foreground swaps.
const DefaultTierMaxInFlight = 2

// tierMeta is the per-blob metadata the tier's memdb holds for every
// demoted payload; it mirrors the handle fields a restore needs, so tier
// contents stay self-describing across restarts.
type tierMeta struct {
	RawBytes   int64  `json:"raw_bytes"`
	BlobBytes  int64  `json:"blob_bytes"`
	Compressed bool   `json:"compressed"`
	Alg        string `json:"alg"`
	Elems      int    `json:"elems"`
	Checksum   uint64 `json:"checksum"`
}

// tierKey is the handle's key in the tier store: the registration name
// (the host-pool key) plus the handle ID, so re-registrations of one name
// can never collide on disk.
func (h *Handle) tierKey() string { return fmt.Sprintf("%s#h%d", h.name, h.id) }

// InTier reports whether the handle's swapped payload currently lives in
// the disk tier rather than the pinned-host pool.
func (h *Handle) InTier() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tiered
}

// TierUsed returns the attached tier's committed bytes (0 without a tier).
func (e *Executor) TierUsed() int64 {
	if e.tier == nil {
		return 0
	}
	return e.tier.Used()
}

// Demote moves a swapped handle's payload from the pinned-host pool into
// the disk tier, freeing its host bytes; a later SwapIn promotes it back
// transparently. The handle must be Swapped (ErrBusy while a swap is in
// flight, the usual taxonomy otherwise); demoting an already-tiered
// handle is a no-op. Fails with ErrNoTier when no tier is configured and
// tier.ErrFull when the tier cannot hold the blob — in both cases the
// payload stays host-resident and intact.
func (e *Executor) Demote(h *Handle) error {
	if e.tier == nil {
		return ErrNoTier
	}
	if err := e.claim(h, Swapped, SwappingOut, nil); err != nil {
		return err
	}
	if _, err := e.tierGate.acquire(context.Background()); err != nil {
		h.commit(Swapped)
		return fmt.Errorf("executor: demote %s: %w", h.name, err)
	}
	defer e.tierGate.release()
	return e.demote(h)
}

// DemoteAsync is Demote as a pipeline stage on the tier window: it claims
// the handle and returns a Ticket immediately (blocking only for a tier
// I/O slot when that window is full — foreground swap slots are never
// consumed). See DemoteAsyncCtx for the context semantics.
func (e *Executor) DemoteAsync(h *Handle) *Ticket {
	return e.DemoteAsyncCtx(context.Background(), h)
}

// DemoteAsyncCtx is DemoteAsync with deadline-aware slot acquisition: if
// ctx is done before a tier slot frees, the ticket resolves with the
// context's error and the handle rolls back to Swapped untouched.
func (e *Executor) DemoteAsyncCtx(ctx context.Context, h *Handle) *Ticket {
	t := newTicket("demote", h.name)
	if e.tier == nil {
		t.complete(ErrNoTier)
		return t
	}
	if err := e.claim(h, Swapped, SwappingOut, t); err != nil {
		t.complete(err)
		return t
	}
	if _, err := e.tierGate.acquire(ctx); err != nil {
		h.commit(Swapped)
		t.complete(fmt.Errorf("executor: demote %s: %w", h.name, err))
		return t
	}
	compress.Go(func() {
		t.complete(e.demote(h))
		e.tierGate.release()
	})
	return t
}

// demote is the demotion body. The caller has claimed SwappingOut and
// holds a tier I/O slot; the body owns the handle's storage until it
// commits back to Swapped (tiered on success, unchanged on failure).
func (e *Executor) demote(h *Handle) error {
	if h.tiered { // already on disk: idempotent
		h.commit(Swapped)
		return nil
	}
	meta := tierMeta{
		RawBytes:   h.Bytes(),
		BlobBytes:  int64(len(h.blob)),
		Compressed: h.compressed,
		Alg:        h.alg.String(),
		Elems:      h.elems,
		Checksum:   h.checksum,
	}
	// Ordering: the blob must be committed on disk before the host copy
	// is released — an interruption here leaves the payload fully
	// host-resident and the tier cleanly without it.
	if err := e.tier.Put(h.tierKey(), h.blob, meta); err != nil {
		h.commit(Swapped)
		return fmt.Errorf("executor: demote %s: %w", h.name, err)
	}
	if err := h.hostBlock.Free(); err != nil {
		_, _ = e.tier.Delete(h.tierKey())
		h.commit(Swapped)
		return fmt.Errorf("executor: demote %s: %w", h.name, err)
	}
	e.recycleBlob(h.blob, h.compressed)
	h.blob = nil
	h.hostBlock = nil
	h.tiered = true
	h.commit(Swapped)
	e.ins.tierDemotions.Inc()
	e.ins.tierOccupancy.Set(float64(e.tier.Used()))
	return nil
}

// promoteRead fetches a tiered handle's payload from the disk store; see
// promoteReadKey. The caller (swapIn) owns the handle's transitional
// state; the tier entry itself is deleted only after the restore commits.
func (e *Executor) promoteRead(h *Handle) ([]byte, error) {
	return e.promoteReadKey(h.tierKey())
}

// promoteReadKey reads one committed tier blob under the tier I/O window,
// counting the tier hit.
func (e *Executor) promoteReadKey(key string) ([]byte, error) {
	if e.tier == nil {
		return nil, ErrNoTier
	}
	if _, err := e.tierGate.acquire(context.Background()); err != nil {
		return nil, err
	}
	defer e.tierGate.release()
	blob, err := e.tier.Get(key, nil)
	if err != nil {
		return nil, err
	}
	e.ins.tierHits.Inc()
	return blob, nil
}

// tierVictim is one demotion candidate: its eviction score and the bytes
// its demotion would free from the host pool.
type tierVictim struct {
	score  float64
	bytes  int64
	demote func() error
}

// tierVictims snapshots and ranks every demotable payload — swapped,
// host-resident tensor handles and stored block-pool runs — cheapest
// expected re-fetch first. Races are benign: each victim's demote
// re-claims its handle or blocks, and a candidate that moved on is
// skipped.
func (e *Executor) tierVictims() []tierVictim {
	now := e.sinceEpoch()
	e.mu.Lock()
	handles := make([]*Handle, 0, len(e.live))
	for _, h := range e.live {
		handles = append(handles, h)
	}
	pools := make([]*BlockPool, 0, len(e.pools))
	for _, p := range e.pools {
		pools = append(pools, p)
	}
	e.mu.Unlock()

	var vs []tierVictim
	for _, h := range handles {
		h.mu.Lock()
		ok := h.state == Swapped && !h.tiered && h.hostBlock != nil
		var score float64
		var bytes int64
		if ok {
			ratio := float64(len(h.blob)) / float64(h.Bytes())
			score = costmodel.DemotionScore(ratio, now-h.swappedAt, 0)
			bytes = int64(len(h.blob))
		}
		h.mu.Unlock()
		if ok {
			h := h
			vs = append(vs, tierVictim{score: score, bytes: bytes, demote: func() error { return e.Demote(h) }})
		}
	}
	for _, p := range pools {
		for _, c := range p.storedRuns() {
			c := c
			p := p
			ratio := float64(c.blobBytes) / float64(c.rawBytes)
			vs = append(vs, tierVictim{
				score:  costmodel.DemotionScore(ratio, now-c.swappedAt, 0),
				bytes:  c.blobBytes,
				demote: func() error { return p.demoteRun(c.pr) },
			})
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].score < vs[j].score })
	return vs
}

// freeHostSpace demotes ranked victims until the host pool has room for
// `need` more bytes, reporting whether it does. Without a tier (or enough
// demotable bytes) it reports the pool's existing headroom; individual
// demote failures (a victim turned busy, the tier filled up) skip to the
// next candidate.
func (e *Executor) freeHostSpace(need int64) bool {
	if e.tier == nil {
		return false
	}
	headroom := func() bool {
		return e.host.Capacity()-e.host.Used() >= need
	}
	if headroom() {
		return true
	}
	for _, v := range e.tierVictims() {
		if headroom() {
			break
		}
		if err := v.demote(); err != nil && errors.Is(err, tier.ErrFull) {
			// A full tier fails every remaining candidate the same way.
			break
		}
	}
	return headroom()
}

// watermarkLoop is the background demoter started by Config.TierWatermark:
// each tick it pushes host-pool occupancy back under the watermark by
// demoting ranked victims, so foreground swap-outs find headroom already
// freed instead of paying freeHostSpace's demote-retry inline. It exits
// when stopWatermark closes the stop channel (Close does, before draining
// the tier gate).
func (e *Executor) watermarkLoop(interval time.Duration) {
	defer close(e.watermarkDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.watermarkStop:
			return
		case <-tick.C:
			e.demoteToWatermark()
		}
	}
}

// demoteToWatermark demotes cheapest-refetch-first victims until host
// occupancy is at or under TierWatermark×capacity, returning how many it
// moved. Individual failures (a victim turned busy) skip to the next
// candidate; a full tier ends the sweep.
func (e *Executor) demoteToWatermark() int {
	target := int64(e.cfg.TierWatermark * float64(e.host.Capacity()))
	moved := 0
	for _, v := range e.tierVictims() {
		if e.host.Used() <= target {
			break
		}
		if err := v.demote(); err != nil {
			if errors.Is(err, tier.ErrFull) {
				break
			}
			continue
		}
		moved++
		e.ins.watermarkDemotions.Inc()
	}
	return moved
}

// stopWatermark shuts the background demoter down, idempotently, and
// waits for its final sweep to finish.
func (e *Executor) stopWatermark() {
	e.watermarkOnce.Do(func() {
		if e.watermarkStop != nil {
			close(e.watermarkStop)
			<-e.watermarkDone
		}
	})
}

// stageFromTier moves a tiered handle's payload from the disk store back
// into the pinned-host pool ahead of its decode — prefetch read-ahead, so
// a later (possibly critical) demand swap-in pays a host-memory read
// instead of a disk fault. Best-effort: on any failure the handle simply
// stays tiered and the swap-in promotes from disk as before. In
// particular, staging never demotes other payloads to make room — the
// speculative copy is not worth evicting warmer bytes for. The caller
// owns the handle's SwappingIn claim.
func (e *Executor) stageFromTier(h *Handle) {
	if e.tier == nil || !h.tiered {
		return
	}
	blob, err := e.promoteRead(h)
	if err != nil {
		return
	}
	hostBlock, err := e.host.Alloc(int64(len(blob)))
	if err != nil {
		return
	}
	// Same ordering as a committed restore: the host copy is installed
	// before the tier entry is deleted, so an interruption never strands
	// the payload in neither store.
	h.blob = blob
	h.hostBlock = hostBlock
	h.tiered = false
	_, _ = e.tier.Delete(h.tierKey())
	e.ins.tierPromotions.Inc()
	e.ins.tierReadahead.Inc()
	e.ins.tierOccupancy.Set(float64(e.tier.Used()))
}

// stageRunFromTier is stageFromTier for one stored block-pool run; the
// caller owns the run's SwappingIn claim.
func (p *BlockPool) stageRunFromTier(pr *poolRun) {
	e := p.e
	if e.tier == nil || !pr.tiered {
		return
	}
	blob, err := e.promoteReadKey(p.runTierKey(pr))
	if err != nil {
		return
	}
	hostBlock, err := e.host.Alloc(int64(len(blob)))
	if err != nil {
		return
	}
	pr.blob = blob
	pr.hostBlock = hostBlock
	pr.tiered = false
	_, _ = e.tier.Delete(p.runTierKey(pr))
	e.ins.tierPromotions.Inc()
	e.ins.tierReadahead.Inc()
	e.ins.tierOccupancy.Set(float64(e.tier.Used()))
}
