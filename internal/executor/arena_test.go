package executor

import (
	"testing"

	"cswap/internal/compress"
	"cswap/internal/metrics"
	"cswap/internal/tensor"
)

func TestArenaSizeClasses(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomises sync.Pool reuse; hit/miss counts are meaningless")
	}
	a := newArena(metrics.NewRegistry())
	// A miss then a hit within one class.
	b := a.get(1000)
	if cap(b) < 1000 || len(b) != 0 {
		t.Fatalf("get(1000): len %d cap %d", len(b), cap(b))
	}
	a.put(b)
	b2 := a.get(700) // same class: ceil(log2) = 10
	if cap(b2) < 700 {
		t.Fatalf("recycled buffer cap %d < 700", cap(b2))
	}
	if a.hits.Value() < 1 {
		t.Fatalf("hits = %v, want >= 1", a.hits.Value())
	}
	// Buffers outside the pooled classes are dropped, not filed.
	a.put(make([]byte, 8))
	a.put(nil)
	// get must honour any n even when unpoolable.
	if b := a.get(0); b == nil || len(b) != 0 {
		t.Fatalf("get(0) = %v", b)
	}
	// A non-power-of-two capacity files under the class it fully covers.
	odd := make([]byte, 0, 3000) // floor(log2) = 11, serves requests <= 2048
	a.put(odd)
	if got := a.get(2048); cap(got) < 2048 {
		t.Fatalf("class guarantee broken: cap %d < 2048", cap(got))
	}
}

// TestArenaCountersSurfaceThroughObserver pins the PR's observability
// contract: the arena's hit/miss/put counters live in the Observer's
// registry, next to the swap counters.
func TestArenaCountersSurfaceThroughObserver(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomises sync.Pool reuse; hit/miss counts are meaningless")
	}
	obs := metrics.NewObserver()
	e, err := New(Config{
		DeviceCapacity: 1 << 20,
		HostCapacity:   1 << 20,
		Launch:         compress.Launch{Grid: 4, Block: 64},
		Observer:       obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := tensor.NewGenerator(31)
	h, err := e.Register("t", gen.Uniform(4096, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			t.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			t.Fatal(err)
		}
	}
	r := obs.Reg()
	hits := r.Counter("executor_arena_gets_total", metrics.L("outcome", "hit")).Value()
	misses := r.Counter("executor_arena_gets_total", metrics.L("outcome", "miss")).Value()
	puts := r.Counter("executor_arena_puts_total").Value()
	if misses < 1 {
		t.Fatalf("arena misses = %v, want >= 1 (first encode must miss)", misses)
	}
	if hits < 2 {
		t.Fatalf("arena hits = %v, want >= 2 (later encodes reuse the blob)", hits)
	}
	if puts < 3 {
		t.Fatalf("arena puts = %v, want >= 3 (every swap-in recycles its blob)", puts)
	}
}

// TestSwapInReusesRetainedBacking pins the retained-buffer decode: a swap
// round trip restores the tensor into the same float32 backing it was
// registered with — no new slice per swap-in.
func TestSwapInReusesRetainedBacking(t *testing.T) {
	e, err := New(Config{
		DeviceCapacity: 1 << 20,
		HostCapacity:   1 << 20,
		Launch:         compress.Launch{Grid: 4, Block: 64},
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := tensor.NewGenerator(37)
	tn := gen.Uniform(2048, 0.5)
	backing := tn.Data
	want := append([]float32(nil), backing...)
	h, err := e.Register("t", tn)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []struct {
		compress bool
		alg      compress.Algorithm
	}{{true, compress.ZVC}, {true, compress.LZ4}, {false, 0}} {
		if err := e.SwapOut(h, alg.compress, alg.alg); err != nil {
			t.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			t.Fatal(err)
		}
		data, err := h.Data()
		if err != nil {
			t.Fatal(err)
		}
		if &data[0] != &backing[0] {
			t.Fatal("swap-in allocated a new backing slice instead of reusing the retained one")
		}
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("restored[%d] = %v, want %v", i, data[i], want[i])
			}
		}
	}
}

// TestSwapHotPathAllocationBudget is the executor-level allocation gate the
// per-codec budgets roll up into: a warm compressed round trip stays within
// a small fixed number of allocations, regardless of tensor size.
func TestSwapHotPathAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomises sync.Pool reuse; alloc counts are meaningless")
	}
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Launch:         compress.Launch{Grid: 16, Block: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := tensor.NewGenerator(41)
	h, err := e.Register("t", gen.Uniform(16384, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the arena and the devmem pools.
	for i := 0; i < 2; i++ {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			t.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 16 // fixed bookkeeping only; was ~53 with per-swap buffers
	got := testing.AllocsPerRun(20, func() {
		if err := e.SwapOut(h, true, compress.ZVC); err != nil {
			t.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Errorf("warm swap round trip: %.1f allocs/op, budget %d", got, budget)
	}
}
