package executor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"cswap/internal/compress"
	"cswap/internal/devmem"
	"cswap/internal/dnn"
	"cswap/internal/faultinject"
	"cswap/internal/sparsity"
	"cswap/internal/swap"
	"cswap/internal/tensor"
)

func newTestExecutor(t *testing.T, dev, host int64) *Executor {
	t.Helper()
	e, err := New(Config{
		DeviceCapacity: dev,
		HostCapacity:   host,
		Launch:         compress.Launch{Grid: 16, Block: 64},
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero capacities accepted")
	}
	if _, err := New(Config{DeviceCapacity: 1, HostCapacity: 1,
		Launch: compress.Launch{Grid: 10, Block: 32}}); err == nil {
		t.Fatal("invalid launch accepted")
	}
	// Zero launch gets a sane default.
	e, err := New(Config{DeviceCapacity: 1 << 20, HostCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Launch.Grid == 0 {
		t.Fatal("default launch not applied")
	}
}

func TestSwapOutInRoundTripCompressed(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1<<22)
	gen := tensor.NewGenerator(1)
	tn := gen.Uniform(50000, 0.6)
	want := append([]float32(nil), tn.Data...)

	h, err := e.Register("ReLU1", tn)
	if err != nil {
		t.Fatal(err)
	}
	if h.State() != Resident {
		t.Fatal("not resident after Register")
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if h.State() != Swapped {
		t.Fatal("not swapped after SwapOut")
	}
	if e.DeviceStats().Used != 0 {
		t.Fatal("device memory not released by swap-out")
	}
	if e.HostStats().Used >= h.Bytes() {
		t.Fatal("compressed swap should use less host memory than raw size")
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	got, err := h.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if e.HostStats().Used != 0 {
		t.Fatal("host memory not released by swap-in")
	}
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 0 {
		t.Fatal("handle still live")
	}
	st := e.Stats()
	if st.SwapOuts != 1 || st.SwapIns != 1 || st.CompressedTensors != 1 || st.Verified != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Ratio() >= 1 {
		t.Fatalf("compressed ratio %v", st.Ratio())
	}
}

func TestSwapOutInRoundTripRaw(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1<<22)
	tn := tensor.NewGenerator(2).Uniform(10000, 0.5)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, false, 0); err != nil {
		t.Fatal(err)
	}
	if e.HostStats().Used != h.Bytes() {
		t.Fatalf("raw swap host usage %d, want %d", e.HostStats().Used, h.Bytes())
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Ratio() != 1 {
		t.Fatalf("raw ratio %v", e.Stats().Ratio())
	}
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}
	// Cache should have recycled the raw buffer.
	if cs := e.CacheStats(); cs.Puts == 0 {
		t.Fatal("raw buffer never returned to cache")
	}
}

func TestAllCodecsThroughExecutor(t *testing.T) {
	for _, a := range compress.Algorithms() {
		e := newTestExecutor(t, 1<<22, 1<<23)
		tn := tensor.NewGenerator(3).Uniform(20000, 0.7)
		h, err := e.Register(a.String(), tn)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SwapOut(h, true, a); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := e.SwapIn(h); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := e.Free(h); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDevicePoolPressureForcesSwapping(t *testing.T) {
	// Device pool fits one tensor; registering the second without
	// swapping the first out must fail with OOM.
	e := newTestExecutor(t, 45000, 1<<22) // 40 KB tensors
	gen := tensor.NewGenerator(4)
	t1 := gen.Uniform(10000, 0.5)
	h1, err := e.Register("a", t1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("b", gen.Uniform(10000, 0.5)); !errors.Is(err, devmem.ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if err := e.SwapOut(h1, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("b", gen.Uniform(10000, 0.5)); err != nil {
		t.Fatalf("register after swap-out: %v", err)
	}
}

func TestStateMachineErrors(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1<<22)
	tn := tensor.NewGenerator(5).Uniform(1000, 0.5)
	h, _ := e.Register("x", tn)
	if err := e.SwapIn(h); err == nil {
		t.Fatal("SwapIn of resident tensor accepted")
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err == nil {
		t.Fatal("double SwapOut accepted")
	}
	if _, err := h.Data(); !errors.Is(err, ErrNotResident) {
		t.Fatalf("Data on swapped tensor err = %v", err)
	}
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Free(h); !errors.Is(err, ErrFreed) {
		t.Fatalf("double Free err = %v", err)
	}
	if err := e.SwapIn(h); !errors.Is(err, ErrFreed) {
		t.Fatalf("SwapIn after Free err = %v", err)
	}
	if err := e.SwapOut(h, false, 0); !errors.Is(err, ErrFreed) {
		t.Fatalf("SwapOut after Free err = %v", err)
	}
}

func TestHostPoolExhaustion(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1024) // tiny host pool
	tn := tensor.NewGenerator(6).Uniform(10000, 0.2)
	h, _ := e.Register("x", tn)
	if err := e.SwapOut(h, false, 0); !errors.Is(err, devmem.ErrOutOfMemory) {
		t.Fatalf("expected host OOM, got %v", err)
	}
	// The tensor must remain resident and usable after the failure.
	if h.State() != Resident {
		t.Fatal("failed swap-out corrupted state")
	}
	if _, err := h.Data(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIterationFunctionalTrainingLoop(t *testing.T) {
	m := dnn.MustBuild("AlexNet", dnn.ImageNet, 64)
	sp := sparsity.ForModel(m, 50, 1)
	const scale = 4096

	// Plan: compress every other tensor with ZVC.
	tensors := m.SwapTensors()
	plan := &swap.Plan{Framework: "test", Tensors: make([]swap.TensorPlan, len(tensors))}
	for i := range plan.Tensors {
		plan.Tensors[i] = swap.TensorPlan{TransferRatio: 1}
		if i%2 == 0 {
			plan.Tensors[i] = swap.TensorPlan{
				Compress: true, Alg: compress.ZVC,
				TransferRatio: 0.5,
			}
		}
	}
	e, err := New(Config{
		DeviceCapacity: MinDeviceCapacity(m, scale),
		HostCapacity:   HostCapacityFor(m, scale),
		Launch:         compress.Launch{Grid: 8, Block: 64},
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunIteration(e, m, plan, sp, 25, scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tensors != len(tensors) {
		t.Fatalf("tensors = %d", rep.Tensors)
	}
	if rep.Compressed != (len(tensors)+1)/2 {
		t.Fatalf("compressed = %d, want %d", rep.Compressed, (len(tensors)+1)/2)
	}
	if rep.Ratio() >= 1 {
		t.Fatalf("iteration ratio %v, compression should reduce moved bytes", rep.Ratio())
	}
	if rep.PeakDeviceBytes > MinDeviceCapacity(m, scale) {
		t.Fatal("device pool exceeded capacity")
	}
	// Everything cleaned up.
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatalf("leaked: live=%d dev=%d host=%d",
			e.Live(), e.DeviceStats().Used, e.HostStats().Used)
	}
	if st := e.Stats(); st.Verified != len(tensors) {
		t.Fatalf("verified %d of %d", st.Verified, len(tensors))
	}
	if rep.MeanSparsity < 0.2 || rep.MeanSparsity > 0.9 {
		t.Fatalf("mean sparsity %v", rep.MeanSparsity)
	}
}

func TestRunIterationMemoryRelief(t *testing.T) {
	// The point of swapping: peak device usage stays near the two largest
	// tensors even though the sum of activations is far larger.
	m := dnn.MustBuild("VGG16", dnn.ImageNet, 32)
	sp := sparsity.ForModel(m, 50, 1)
	const scale = 8192
	plan := &swap.Plan{Framework: "vDNN", Tensors: make([]swap.TensorPlan, len(m.SwapTensors()))}
	for i := range plan.Tensors {
		plan.Tensors[i] = swap.TensorPlan{TransferRatio: 1}
	}
	cap := MinDeviceCapacity(m, scale)
	e, err := New(Config{DeviceCapacity: cap, HostCapacity: HostCapacityFor(m, scale), Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunIteration(e, m, plan, sp, 0, scale, 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, st := range m.SwapTensors() {
		total += st.Bytes / scale
	}
	if rep.PeakDeviceBytes >= total/2 {
		t.Fatalf("peak %d not far below total %d — swapping bought no relief",
			rep.PeakDeviceBytes, total)
	}
}

func TestRunIterationRejectsMismatchedPlan(t *testing.T) {
	m := dnn.MustBuild("AlexNet", dnn.ImageNet, 64)
	sp := sparsity.ForModel(m, 50, 1)
	e := newTestExecutor(t, 1<<24, 1<<24)
	plan := &swap.Plan{Framework: "bad", Tensors: make([]swap.TensorPlan, 1)}
	if _, err := RunIteration(e, m, plan, sp, 0, 1024, 1); err == nil {
		t.Fatal("mismatched plan accepted")
	}
}

func TestCapacityHelpers(t *testing.T) {
	m := dnn.MustBuild("VGG16", dnn.ImageNet, 128)
	devCap := MinDeviceCapacity(m, 1024)
	hostCap := HostCapacityFor(m, 1024)
	if devCap <= 0 || hostCap <= devCap {
		t.Fatalf("capacities dev=%d host=%d", devCap, hostCap)
	}
	// Unscaled capacity must cover the two largest tensors (2×1568 MiB).
	full := MinDeviceCapacity(m, 1)
	if full < 2*1568<<20 {
		t.Fatalf("full-scale capacity %d too small", full)
	}
	if MinDeviceCapacity(m, 0) != full {
		t.Fatal("scaleDiv<1 should clamp to 1")
	}
}

func TestSwapInDetectsCorruptedHostData(t *testing.T) {
	// Failure injection: flip bits in the swapped blob; SwapIn must fail
	// (codec error or checksum mismatch), never return wrong data, and
	// the pools must stay consistent.
	for _, alg := range compress.ExtendedAlgorithms() {
		e := newTestExecutor(t, 1<<22, 1<<23)
		tn := tensor.NewGenerator(9).Uniform(20000, 0.6)
		h, err := e.Register("victim", tn)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SwapOut(h, true, alg); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Corrupt a payload byte past the container directory.
		h.blob[len(h.blob)/2] ^= 0xFF
		err = e.SwapIn(h)
		if err == nil {
			// Some corruptions decode structurally but must then fail
			// verification; reaching here means wrong data was accepted.
			t.Fatalf("%s: corrupted blob accepted", alg)
		}
		// The failed swap-in must not leak device memory.
		if e.DeviceStats().Used != 0 {
			t.Fatalf("%s: device leak after failed swap-in", alg)
		}
		if h.State() != Swapped {
			t.Fatalf("%s: state corrupted", alg)
		}
	}
}

func TestRawSwapCorruptionCaughtByChecksum(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1<<22)
	tn := tensor.NewGenerator(10).Uniform(5000, 0.5)
	h, err := e.Register("raw", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, false, 0); err != nil {
		t.Fatal(err)
	}
	h.blob[100] ^= 0x01
	if err := e.SwapIn(h); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

// newFaultyExecutor builds an executor with the given faults armed.
func newFaultyExecutor(t *testing.T, dev, host int64, faults ...faultinject.Fault) *Executor {
	t.Helper()
	e, err := New(Config{
		DeviceCapacity: dev,
		HostCapacity:   host,
		Launch:         compress.Launch{Grid: 16, Block: 64},
		Verify:         true,
		Faults:         faultinject.New(faults...),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEncodeFailureFallsBackToRaw(t *testing.T) {
	e := newFaultyExecutor(t, 1<<22, 1<<22,
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Fail})
	tn := tensor.NewGenerator(11).Uniform(20000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatalf("encode failure must degrade, not error: %v", err)
	}
	if h.Compressed() {
		t.Fatal("fallback swap still marked compressed")
	}
	st := e.Stats()
	if st.EncodeFallbacks != 1 || st.CompressedTensors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.MovedBytes != h.Bytes() {
		t.Fatalf("raw fallback moved %d bytes, want %d", st.MovedBytes, h.Bytes())
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	got, err := h.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("fallback round trip mismatch at %d", i)
		}
	}
	if fs := e.FaultStats(); fs.Failures != 1 {
		t.Fatalf("fault stats %+v", fs)
	}
}

func TestEncodeFallbackIterationCompletesBitExactly(t *testing.T) {
	// The acceptance scenario: codec failures mid-iteration degrade to raw
	// swaps and the training iteration still completes with every tensor
	// restored bit-exactly (Verify is on, so each swap-in is checksummed).
	m := dnn.MustBuild("AlexNet", dnn.ImageNet, 64)
	sp := sparsity.ForModel(m, 50, 1)
	const scale = 4096
	tensors := m.SwapTensors()
	plan := &swap.Plan{Framework: "test", Tensors: make([]swap.TensorPlan, len(tensors))}
	for i := range plan.Tensors {
		plan.Tensors[i] = swap.TensorPlan{Compress: true, Alg: compress.ZVC, TransferRatio: 0.5}
	}
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Fail, After: 2, Every: 40},
	)
	e, err := New(Config{
		DeviceCapacity: MinDeviceCapacity(m, scale),
		HostCapacity:   HostCapacityFor(m, scale),
		Launch:         compress.Launch{Grid: 8, Block: 64},
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunIteration(e, m, plan, sp, 25, scale, 7)
	if err != nil {
		t.Fatalf("iteration must survive injected encode failures: %v", err)
	}
	st := e.Stats()
	if st.EncodeFallbacks == 0 {
		t.Fatal("no encode fallbacks recorded — fault never fired")
	}
	if st.Verified != len(tensors) {
		t.Fatalf("verified %d of %d tensors", st.Verified, len(tensors))
	}
	if rep.Compressed+st.EncodeFallbacks != len(tensors) {
		t.Fatalf("compressed %d + fallbacks %d != %d tensors",
			rep.Compressed, st.EncodeFallbacks, len(tensors))
	}
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatal("iteration with fallbacks leaked memory")
	}
}

func TestHostAllocFailureFallsBackToRaw(t *testing.T) {
	// The compressed blob's host allocation fails (injected); the executor
	// must retry the raw path instead of surfacing.
	e := newFaultyExecutor(t, 1<<22, 1<<22,
		faultinject.Fault{Site: faultinject.SiteHostAlloc, Mode: faultinject.Fail})
	tn := tensor.NewGenerator(12).Uniform(20000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.RLE); err != nil {
		t.Fatalf("host-pool pressure must degrade, not error: %v", err)
	}
	if h.Compressed() {
		t.Fatal("fallback swap still marked compressed")
	}
	st := e.Stats()
	if st.AllocFallbacks != 1 || st.Fallbacks() != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Data()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("fallback round trip mismatch at %d", i)
		}
	}
	if hs := e.HostStats(); hs.FailedAllocs != 1 {
		t.Fatalf("host pool stats %+v", hs)
	}
}

func TestGenuineRawHostExhaustionStillSurfaces(t *testing.T) {
	// Graceful degradation must not mask real capacity exhaustion: when
	// even the raw fallback cannot be allocated, the error surfaces and
	// the tensor stays resident.
	e := newTestExecutor(t, 1<<22, 100) // host pool far too small for anything
	tn := tensor.NewGenerator(13).Uniform(10000, 0.99)
	h, _ := e.Register("x", tn)
	if err := e.SwapOut(h, true, compress.ZVC); !errors.Is(err, devmem.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if h.State() != Resident {
		t.Fatal("failed swap-out corrupted state")
	}
	if st := e.Stats(); st.Fallbacks() != 0 || st.SwapOuts != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTransferInCorruptionRecoveredFromRetainedBlob(t *testing.T) {
	// In-flight corruption on the host→device transfer: the first decode
	// (or its checksum) fails, the retry from the retained host blob
	// succeeds, and the swap-in commits.
	for _, raw := range []bool{false, true} {
		e := newFaultyExecutor(t, 1<<22, 1<<23,
			faultinject.Fault{Site: faultinject.SiteTransferIn, Mode: faultinject.Corrupt})
		tn := tensor.NewGenerator(14).Uniform(20000, 0.6)
		want := append([]float32(nil), tn.Data...)
		h, err := e.Register("x", tn)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SwapOut(h, !raw, compress.ZVC); err != nil {
			t.Fatal(err)
		}
		if err := e.SwapIn(h); err != nil {
			t.Fatalf("raw=%v: transient corruption must be recovered: %v", raw, err)
		}
		st := e.Stats()
		if st.DecodeRetries != 1 || st.DecodeRecoveries != 1 {
			t.Fatalf("raw=%v: stats %+v", raw, st)
		}
		got, _ := h.Data()
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("raw=%v: recovered data mismatch at %d", raw, i)
			}
		}
	}
}

func TestTransferInTruncationRecoveredFromRetainedBlob(t *testing.T) {
	e := newFaultyExecutor(t, 1<<22, 1<<23,
		faultinject.Fault{Site: faultinject.SiteTransferIn, Mode: faultinject.Truncate})
	tn := tensor.NewGenerator(15).Uniform(20000, 0.6)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.LZ4); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatalf("truncated transfer must be recovered: %v", err)
	}
	if st := e.Stats(); st.DecodeRecoveries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInjectedDecodeFailureRecovered(t *testing.T) {
	e := newFaultyExecutor(t, 1<<22, 1<<23,
		faultinject.Fault{Site: faultinject.SiteDecode, Mode: faultinject.Fail})
	tn := tensor.NewGenerator(16).Uniform(20000, 0.6)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.CSR); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatalf("one-shot injected decode failure must be recovered: %v", err)
	}
	if st := e.Stats(); st.DecodeRetries != 1 || st.DecodeRecoveries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTransferOutCorruptionSurfacesChunkContext(t *testing.T) {
	// Persistent corruption of the stored blob (the transfer-out copy is
	// what the host pool retains): the retry rereads the same bad bytes,
	// so the failure must surface — wrapped with codec and chunk context
	// when the codec caught it — and never as silent wrong data.
	e := newTestExecutor(t, 1<<22, 1<<23)
	tn := tensor.NewGenerator(17).Uniform(20000, 0.6)
	h, err := e.Register("victim", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	// Flip the first chunk's algorithm byte — deterministic structural
	// corruption the decoder pins to chunk 0.
	numChunks := int(binary.LittleEndian.Uint32(h.blob[10:14]))
	h.blob[14+8*numChunks] ^= 0xFF
	err = e.SwapIn(h)
	if err == nil {
		t.Fatal("persistently corrupted blob accepted")
	}
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("err = %v, want wrapped ErrCorrupt", err)
	}
	var ce *compress.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want codec+chunk context (*compress.ChunkError)", err)
	}
	if ce.Alg != compress.ZVC || ce.Chunk != 0 {
		t.Fatalf("chunk context %+v", ce)
	}
	if st := e.Stats(); st.DecodeRetries != 1 || st.DecodeRecoveries != 0 {
		t.Fatalf("stats %+v", st)
	}
	if h.State() != Swapped || e.DeviceStats().Used != 0 {
		t.Fatal("failed swap-in corrupted state or leaked device memory")
	}
}

func TestInjectedTransferOutCorruptionNeverSilent(t *testing.T) {
	// An injector-armed transfer-out fault corrupts what the host pool
	// stores; whatever byte it hits, the swap-in must error (codec or
	// checksum), never silently return wrong data.
	for _, alg := range compress.ExtendedAlgorithms() {
		e := newFaultyExecutor(t, 1<<22, 1<<23,
			faultinject.Fault{Site: faultinject.SiteTransferOut, Mode: faultinject.Corrupt})
		tn := tensor.NewGenerator(18).Uniform(20000, 0.6)
		h, err := e.Register("victim", tn)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SwapOut(h, true, alg); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := e.SwapIn(h); err == nil {
			t.Fatalf("%s: persistently corrupted blob accepted", alg)
		}
		if h.State() != Swapped || e.DeviceStats().Used != 0 {
			t.Fatalf("%s: failed swap-in corrupted state or leaked device memory", alg)
		}
	}
}

func TestInjectedDeviceAllocFailureLeavesTensorSwapped(t *testing.T) {
	e := newFaultyExecutor(t, 1<<22, 1<<23,
		faultinject.Fault{Site: faultinject.SiteDeviceAlloc, Mode: faultinject.Fail, After: 2})
	tn := tensor.NewGenerator(19).Uniform(10000, 0.5)
	h, err := e.Register("x", tn) // device alloc #1
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(h); !errors.Is(err, faultinject.ErrInjected) { // device alloc #2 fails
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if h.State() != Swapped {
		t.Fatal("failed swap-in lost the tensor")
	}
	// The fault was one-shot: the caller can simply try again.
	if err := e.SwapIn(h); err != nil {
		t.Fatalf("retry after transient device-alloc failure: %v", err)
	}
}

func TestDelayedCodecWorkStillCompletes(t *testing.T) {
	e := newFaultyExecutor(t, 1<<22, 1<<23,
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Delay, Delay: time.Millisecond},
		faultinject.Fault{Site: faultinject.SiteDecode, Mode: faultinject.Delay, Delay: time.Millisecond},
	)
	tn := tensor.NewGenerator(20).Uniform(5000, 0.5)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	if fs := e.FaultStats(); fs.Delays != 2 {
		t.Fatalf("fault stats %+v", fs)
	}
	if st := e.Stats(); st.DecodeRetries != 0 || st.Fallbacks() != 0 {
		t.Fatalf("delays must not trigger fallbacks: %+v", st)
	}
}

func TestConcurrentSwapStreamsUnderFaults(t *testing.T) {
	// The concurrency contract with the fault layer active: several
	// goroutines drive handles through swap cycles while encode failures
	// and transfer corruptions keep firing. Everything must still complete
	// (degraded where needed) with no races (-race) and no leaks.
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Fail, After: 3, Every: 17},
		faultinject.Fault{Site: faultinject.SiteTransferIn, Mode: faultinject.Corrupt, After: 2, Every: 5},
		// A decode pass covers 16 chunk-ops (grid 16) and the injector's
		// counter is shared by ALL workers, so the spacing must exceed the
		// worst-case window between one stream's fault and its one-shot
		// retry: up to 32 of its own ops plus a concurrent decode pass from
		// each of the other 7 streams (32 + 7*32 = 256), or the retry can
		// itself be re-injected and surface.
		faultinject.Fault{Site: faultinject.SiteDecode, Mode: faultinject.Fail, After: 7, Every: 271},
	)
	e, err := New(Config{
		DeviceCapacity: 8 << 20,
		HostCapacity:   32 << 20,
		Launch:         compress.Launch{Grid: 16, Block: 64},
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rounds = 15
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := tensor.NewGenerator(int64(w))
			for r := 0; r < rounds; r++ {
				tn := gen.Uniform(10000, 0.6)
				h, err := e.Register(fmt.Sprintf("w%d-r%d", w, r), tn)
				if err != nil {
					errs <- err
					return
				}
				alg := compress.Algorithms()[(w+r)%4]
				if err := e.SwapOut(h, true, alg); err != nil {
					errs <- fmt.Errorf("swap out: %w", err)
					return
				}
				if err := e.SwapIn(h); err != nil {
					errs <- fmt.Errorf("swap in: %w", err)
					return
				}
				if err := e.Free(h); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatal("faulty concurrent streams leaked memory")
	}
	st := e.Stats()
	if st.SwapOuts != workers*rounds || st.SwapIns != workers*rounds {
		t.Fatalf("stats %+v", st)
	}
	if st.EncodeFallbacks == 0 || st.DecodeRecoveries == 0 {
		t.Fatalf("faults never fired under concurrency: %+v", st)
	}
	if fs := e.FaultStats(); fs.Total() == 0 {
		t.Fatalf("fault stats %+v", fs)
	}
}

// TestSwapOutDevFreeFailureRecyclesBlob pins the blob-leak fix: when the
// device block cannot be released after the host copy landed, the encoded
// (or raw) blob must go back to its pool — arena puts (or cache puts)
// account for it — and the swap-out rolls back with the host reservation
// released.
func TestSwapOutDevFreeFailureRecyclesBlob(t *testing.T) {
	for _, compressed := range []bool{true, false} {
		e := newTestExecutor(t, 1<<22, 1<<22)
		tn := tensor.NewGenerator(60).Uniform(20000, 0.6)
		h, err := e.Register("x", tn)
		if err != nil {
			t.Fatal(err)
		}
		// Sabotage: release the device block out from under the handle so
		// the swap-out's own Free fails with ErrDoubleFree.
		if err := h.devBlock.Free(); err != nil {
			t.Fatal(err)
		}
		arenaPuts := e.arena.puts.Value()
		cachePuts := e.CacheStats().Puts
		if err := e.SwapOut(h, compressed, compress.ZVC); !errors.Is(err, devmem.ErrDoubleFree) {
			t.Fatalf("compressed=%v: err = %v, want ErrDoubleFree", compressed, err)
		}
		if h.State() != Resident {
			t.Fatalf("compressed=%v: failed swap-out left state %s", compressed, h.State())
		}
		if e.HostStats().Used != 0 {
			t.Fatalf("compressed=%v: failed swap-out leaked host memory", compressed)
		}
		if compressed {
			if got := e.arena.puts.Value(); got != arenaPuts+1 {
				t.Fatalf("arena puts %v -> %v: encoded blob leaked on the dev-free failure path", arenaPuts, got)
			}
		} else {
			if got := e.CacheStats().Puts; got != cachePuts+1 {
				t.Fatalf("cache puts %v -> %v: raw blob leaked on the dev-free failure path", cachePuts, got)
			}
		}
	}
}

// TestSwapInHostFreeFailureAtomic pins the atomic-failure fix: when the
// host block cannot be released after a successful decode, the handle
// must stay cleanly Swapped — retained blob intact, device reservation
// released, bookkeeping consistent — and the failure must look identical
// on a retry.
func TestSwapInHostFreeFailureAtomic(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1<<22)
	tn := tensor.NewGenerator(61).Uniform(20000, 0.6)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	// Sabotage: release the host block out from under the handle so the
	// swap-in's commit-time Free fails with ErrDoubleFree.
	if err := h.hostBlock.Free(); err != nil {
		t.Fatal(err)
	}
	blob := h.blob
	for attempt := 0; attempt < 2; attempt++ { // the failure is retry-stable
		if err := e.SwapIn(h); !errors.Is(err, devmem.ErrDoubleFree) {
			t.Fatalf("attempt %d: err = %v, want ErrDoubleFree", attempt, err)
		}
		if h.State() != Swapped {
			t.Fatalf("attempt %d: failed swap-in left state %s, want swapped", attempt, h.State())
		}
		if &h.blob[0] != &blob[0] || h.hostBlock == nil {
			t.Fatalf("attempt %d: retained blob or host block lost on the failure path", attempt)
		}
		if e.DeviceStats().Used != 0 {
			t.Fatalf("attempt %d: failed swap-in leaked device memory", attempt)
		}
		if h.scratch == nil {
			t.Fatalf("attempt %d: decode buffer dropped instead of retained", attempt)
		}
		if st := e.Stats(); st.SwapIns != 0 {
			t.Fatalf("attempt %d: failed swap-in counted as committed: %+v", attempt, st)
		}
	}
}

func TestConcurrentSwapStreams(t *testing.T) {
	// Several goroutines each drive their own tensors through the full
	// register/swap-out/swap-in/free cycle against shared pools — the
	// multi-stream usage a real swapping executor sees. Run with -race.
	e := newTestExecutor(t, 8<<20, 32<<20)
	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := tensor.NewGenerator(int64(w))
			for r := 0; r < rounds; r++ {
				tn := gen.Uniform(10000, 0.6)
				h, err := e.Register(fmt.Sprintf("w%d-r%d", w, r), tn)
				if err != nil {
					errs <- err
					return
				}
				alg := compress.Algorithms()[(w+r)%4]
				if err := e.SwapOut(h, true, alg); err != nil {
					errs <- err
					return
				}
				if err := e.SwapIn(h); err != nil {
					errs <- err
					return
				}
				if err := e.Free(h); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatal("concurrent streams leaked memory")
	}
	st := e.Stats()
	if st.SwapOuts != workers*rounds || st.Verified != workers*rounds {
		t.Fatalf("stats %+v", st)
	}
}
