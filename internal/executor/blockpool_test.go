package executor

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cswap/internal/compress"
)

func newPoolExecutor(t *testing.T) *Executor {
	t.Helper()
	e, err := New(Config{DeviceCapacity: 64 << 20, HostCapacity: 64 << 20, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// blockFill gives block id a distinctive payload so cross-block mixups
// cannot verify.
func blockFill(id, elems int) []float32 {
	data := make([]float32, elems)
	for i := range data {
		if i%3 == 0 {
			data[i] = 0 // keep some sparsity for the codecs
		} else {
			data[i] = float32(id*1000 + i)
		}
	}
	return data
}

func TestCoalesceBlockIDs(t *testing.T) {
	cases := []struct {
		ids  []int
		want []BlockRun
	}{
		{nil, nil},
		{[]int{}, nil},
		{[]int{5}, []BlockRun{{5, 1}}},
		{[]int{3, 4, 5}, []BlockRun{{3, 3}}},
		{[]int{5, 3, 4}, []BlockRun{{3, 3}}},
		{[]int{3, 3, 4, 4, 5}, []BlockRun{{3, 3}}},
		{[]int{0, 2, 3, 7}, []BlockRun{{0, 1}, {2, 2}, {7, 1}}},
		{[]int{9, 0, 1, 8, 4}, []BlockRun{{0, 2}, {4, 1}, {8, 2}}},
	}
	for _, c := range cases {
		got := CoalesceBlockIDs(c.ids)
		if len(got) != len(c.want) {
			t.Fatalf("Coalesce(%v) = %v, want %v", c.ids, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Coalesce(%v) = %v, want %v", c.ids, got, c.want)
			}
		}
	}
}

// TestSequentialBatchCoalescesToOneRun pins the acceptance criterion: a
// batch of sequential block IDs merges into exactly one run — one codec
// operation, one host allocation, one swap counted.
func TestSequentialBatchCoalescesToOneRun(t *testing.T) {
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = i + 10
	}
	if runs := CoalesceBlockIDs(ids); len(runs) != 1 || runs[0] != (BlockRun{Start: 10, Count: 64}) {
		t.Fatalf("sequential IDs coalesced to %v, want one run [10,+64)", runs)
	}

	e := newPoolExecutor(t)
	p, err := e.RegisterBlockPool("kv", 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats().SwapOuts
	if err := p.SwapOutBlocks(ids, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().SwapOuts - before; got != 1 {
		t.Fatalf("sequential 64-block batch issued %d swap operations, want 1", got)
	}
	if got := int(e.ins.batchRuns.Value()); got != 1 {
		t.Fatalf("executor_batch_runs_total = %d, want 1", got)
	}
	if got := int(e.ins.batchBlocks.Value()); got != 64 {
		t.Fatalf("executor_batch_blocks_total = %d, want 64", got)
	}
}

func TestBlockPoolRoundTrip(t *testing.T) {
	e := newPoolExecutor(t)
	const elems, blocks = 16, 32
	p, err := e.RegisterBlockPool("kv", elems, blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Write distinctive contents into a fragmented working set.
	ids := []int{0, 1, 2, 7, 8, 20}
	var packed []float32
	for _, id := range ids {
		packed = append(packed, blockFill(id, elems)...)
	}
	if err := p.WriteBlocks(ids, packed); err != nil {
		t.Fatal(err)
	}
	// Swap out in scrambled order with duplicates; coalescing handles both.
	scrambled := []int{20, 2, 0, 8, 1, 7, 7, 0}
	if err := p.SwapOutBlocks(scrambled, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st := p.BlockState(id); st != Swapped {
			t.Fatalf("block %d state %s after batch swap-out", id, st)
		}
	}
	if st := p.BlockState(3); st != Resident {
		t.Fatalf("unrequested block 3 state %s", st)
	}
	// Reading a swapped block refuses; restore and compare bit-exactly.
	if _, err := p.ReadBlocks([]int{7}); !errors.Is(err, ErrNotResident) {
		t.Fatalf("ReadBlocks on swapped block: %v, want ErrNotResident", err)
	}
	if err := p.SwapInBlocks(ids); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadBlocks(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range packed {
		if got[i] != packed[i] {
			t.Fatalf("restored data differs at element %d: %v != %v", i, got[i], packed[i])
		}
	}
	if e.Stats().Verified == 0 {
		t.Fatal("no verified restores counted")
	}
}

// TestBlockPoolRunGranularity pins the documented restore granularity:
// requesting one block of a stored run restores the whole run.
func TestBlockPoolRunGranularity(t *testing.T) {
	e := newPoolExecutor(t)
	p, err := e.RegisterBlockPool("kv", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SwapOutBlocks([]int{4, 5, 6, 7}, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.SwapInBlocks([]int{5}); err != nil {
		t.Fatal(err)
	}
	for id := 4; id <= 7; id++ {
		if st := p.BlockState(id); st != Resident {
			t.Fatalf("block %d state %s, want Resident (run granularity)", id, st)
		}
	}
}

func TestBlockPoolStateErrors(t *testing.T) {
	e := newPoolExecutor(t)
	p, err := e.RegisterBlockPool("kv", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range IDs refuse everywhere.
	if err := p.SwapOutBlocks([]int{16}, false, 0); err == nil {
		t.Fatal("out-of-range swap-out accepted")
	}
	if err := p.SwapInBlocks([]int{-1}); err == nil {
		t.Fatal("negative-ID swap-in accepted")
	}
	if err := p.WriteBlocks([]int{3, 3}, make([]float32, 16)); err == nil {
		t.Fatal("duplicate WriteBlocks IDs accepted")
	}
	// A batch touching one already-swapped block fails whole: no block of
	// the batch changes state.
	if err := p.SwapOutBlocks([]int{0, 1}, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.SwapOutBlocks([]int{1, 2, 3}, false, 0); !errors.Is(err, ErrNotResident) {
		t.Fatalf("mixed-state batch: %v, want ErrNotResident", err)
	}
	for id := 2; id <= 3; id++ {
		if st := p.BlockState(id); st != Resident {
			t.Fatalf("block %d state %s after failed batch, want Resident (atomic claim)", id, st)
		}
	}
	// Swap-in of resident blocks is an idempotent no-op.
	if err := p.SwapInBlocks([]int{4, 5}); err != nil {
		t.Fatalf("resident swap-in: %v", err)
	}
	// Empty batches are legal no-ops.
	if err := p.SwapOutBlocks(nil, false, 0); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := p.PrefetchBlocks(nil).Wait(); err != nil {
		t.Fatalf("empty prefetch: %v", err)
	}
}

func TestBlockPoolPrefetchOverlap(t *testing.T) {
	e := newPoolExecutor(t)
	p, err := e.RegisterBlockPool("kv", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SwapOutBlocks([]int{0, 1, 2, 3, 10, 11, 30}, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	// Prefetch returns immediately with an aggregate ticket; Wait restores
	// all three runs.
	tk := p.PrefetchBlocks([]int{0, 1, 2, 3, 10, 11, 30})
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 3, 10, 30} {
		if st := p.BlockState(id); st != Resident {
			t.Fatalf("block %d state %s after prefetch", id, st)
		}
	}
}

func TestBlockPoolFree(t *testing.T) {
	e := newPoolExecutor(t)
	p, err := e.RegisterBlockPool("kv", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SwapOutBlocks([]int{0, 1}, false, 0); err != nil {
		t.Fatal(err)
	}
	devUsed := e.DeviceStats().Used
	if err := p.Free(); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free: %v, want ErrFreed", err)
	}
	if e.DeviceStats().Used >= devUsed {
		t.Fatal("device bytes not released by pool free")
	}
	if e.HostStats().Used != 0 {
		t.Fatalf("host pool still holds %d bytes after pool free", e.HostStats().Used)
	}
	if err := p.SwapOutBlocks([]int{2}, false, 0); !errors.Is(err, ErrFreed) {
		t.Fatalf("swap-out on freed pool: %v, want ErrFreed", err)
	}
	if e.Live() != 0 {
		t.Fatalf("Live() = %d after pool free", e.Live())
	}
}

// TestBlockPoolConcurrentBatches drives disjoint batches concurrently
// (run under -race via make race): distinct runs never contend, and the
// bounded window serialises what must serialise.
func TestBlockPoolConcurrentBatches(t *testing.T) {
	e := newPoolExecutor(t)
	const elems, blocks, workers = 32, 256, 8
	p, err := e.RegisterBlockPool("kv", elems, blocks)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * (blocks / workers)
			ids := []int{base, base + 1, base + 2, base + 5}
			for iter := 0; iter < 10; iter++ {
				if err := p.SwapOutBlocks(ids, true, compress.ZVC); err != nil {
					errs <- fmt.Errorf("worker %d out: %w", w, err)
					return
				}
				if err := p.SwapInBlocks(ids); err != nil {
					errs <- fmt.Errorf("worker %d in: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.Stats().SwapOuts; got != workers*10*2 {
		t.Fatalf("swap-outs = %d, want %d (2 runs x 10 iters x %d workers)", got, workers*10*2, workers)
	}
}

func TestBlockHandle(t *testing.T) {
	e := newPoolExecutor(t)
	p, err := e.RegisterBlockPool("kv", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Handle(2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Pool() != p || h.ID() != 2 || h.State() != Resident {
		t.Fatalf("handle view wrong: %+v state %s", h, h.State())
	}
	if _, err := p.Handle(4); err == nil {
		t.Fatal("out-of-range handle accepted")
	}
	if err := p.SwapOutBlocks([]int{2}, false, 0); err != nil {
		t.Fatal(err)
	}
	if h.State() != Swapped {
		t.Fatalf("handle state %s after swap-out", h.State())
	}
}
