package executor

import (
	"context"
	"fmt"
	"sync"

	"cswap/internal/compress"
	"cswap/internal/metrics"
	"cswap/internal/sched"
)

// This file is the asynchronous swap pipeline built on the guarded handle
// state machine: SwapOutAsync / SwapInAsync / Prefetch claim the handle
// synchronously (so misuse surfaces immediately as a failed Ticket), take
// one slot of a bounded in-flight window (backpressure: submission blocks
// while the window is full), and run the codec + pool work on the compress
// package's persistent worker pool. Drain is the completion barrier; Close
// drains and then refuses new work. The paper's premise — swap traffic
// overlapping compute (Fig. 2's execution flows, Eq. 1's hidden windows) —
// is exactly what this buys the caller: issue transfers ahead of the
// consumer, keep computing, and Wait only when the data is needed.

// Ticket is the awaitable future returned by the asynchronous swap API.
// A Ticket completes exactly once, after the operation has committed (or
// rolled back) the handle's state; Wait and Done may be used from any
// number of goroutines.
type Ticket struct {
	op   string // "swap-out" | "swap-in" | "prefetch"
	name string // tensor name, for spans and errors
	done chan struct{}
	err  error
}

// newTicket returns a pending ticket.
func newTicket(op, name string) *Ticket {
	return &Ticket{op: op, name: name, done: make(chan struct{})}
}

// completedTicket returns a ticket that is already done with the given
// error — the shape immediate failures (and no-op prefetches) take.
func completedTicket(op, name string, err error) *Ticket {
	t := newTicket(op, name)
	t.complete(err)
	return t
}

// complete resolves the ticket. The error write happens before the channel
// close, so any goroutine unblocked by Done/Wait observes it.
func (t *Ticket) complete(err error) {
	t.err = err
	close(t.done)
}

// Done returns a channel closed when the operation has completed; after
// it is closed, Err reports the outcome. Use it to select across tickets.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the operation completes and returns its error.
func (t *Ticket) Wait() error {
	<-t.done
	return t.err
}

// WaitContext blocks until the operation completes or ctx is done,
// whichever comes first. A context error abandons the wait, not the work:
// the operation keeps running on the pool, still commits (or rolls back)
// the handle's state, and still releases its in-flight slot — the caller
// may re-Wait the same ticket later, or Drain for the barrier. This is the
// deadline-propagation seam a serving layer needs: a client whose request
// times out stops waiting without leaving the handle machine torn.
func (t *Ticket) WaitContext(ctx context.Context) error {
	// An already-resolved ticket reports its outcome even under a dead
	// context: the work is done, so the deadline no longer applies.
	select {
	case <-t.done:
		return t.err
	default:
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		return fmt.Errorf("executor: %s %s: %w", t.op, t.name, ctx.Err())
	}
}

// Err returns the operation's error, or nil while it is still in flight.
// Prefer Wait unless polling.
func (t *Ticket) Err() error {
	select {
	case <-t.done:
		return t.err
	default:
		return nil
	}
}

// Op returns which operation the ticket tracks ("swap-out", "swap-in",
// or "prefetch").
func (t *Ticket) Op() string { return t.op }

// asyncGate is a bounded in-flight window. Slots are acquired at
// submission time in the caller's goroutine — a full window blocks the
// submitter, which is the backpressure the pipeline promises — and
// released when the operation commits. The gauge, peak, and queue-depth
// instruments are updated under the gate's lock so their readings are
// consistent with the count. The executor runs two gates: the main swap
// window and a separate (smaller) one for tier demotion/promotion I/O,
// each with its own instrument cells.
type asyncGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	max      int
	inflight int
	peak     int
	closed   bool

	inflightG, peakG *metrics.Gauge
	depthH           *metrics.Histogram
}

func (g *asyncGate) init(max int, inflightG, peakG *metrics.Gauge, depthH *metrics.Histogram) {
	g.max = max
	g.inflightG, g.peakG, g.depthH = inflightG, peakG, depthH
	g.cond = sync.NewCond(&g.mu)
}

// acquire takes one in-flight slot, blocking while the window is full.
// It reports whether the caller had to wait (backpressure) and fails with
// ErrClosed once the gate is closed, or with the context's error if ctx
// is done first — deadline-aware slot acquisition, so a submitter with a
// budget is not held hostage by a saturated window.
func (g *asyncGate) acquire(ctx context.Context) (waited bool, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inflight >= g.max && !g.closed {
		if err := ctx.Err(); err != nil {
			return waited, err
		}
		waited = true
		g.waitCtx(ctx)
	}
	if g.closed {
		return waited, ErrClosed
	}
	g.inflight++
	if g.inflight > g.peak {
		g.peak = g.inflight
		g.peakG.Set(float64(g.peak))
	}
	g.inflightG.Set(float64(g.inflight))
	g.depthH.Observe(float64(g.inflight))
	return waited, nil
}

// waitCtx is cond.Wait with an additional wake-up when ctx is done. The
// caller holds g.mu. The watcher goroutine takes g.mu before broadcasting:
// since Wait releases the lock atomically as it sleeps, a watcher started
// while the lock is held cannot broadcast before the waiter is actually
// waiting — no missed wake-up. The broadcast may rouse unrelated waiters;
// they re-check their condition and sleep again.
func (g *asyncGate) waitCtx(ctx context.Context) {
	done := ctx.Done()
	if done == nil {
		g.cond.Wait()
		return
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-done:
			g.mu.Lock()
			g.mu.Unlock() //nolint:staticcheck // empty section: the lock cycle orders us after cond.Wait's release
			g.cond.Broadcast()
		case <-stop:
		}
	}()
	g.cond.Wait()
	close(stop)
}

// release returns one slot and wakes blocked submitters and drainers.
func (g *asyncGate) release() {
	g.mu.Lock()
	g.inflight--
	g.inflightG.Set(float64(g.inflight))
	g.cond.Broadcast()
	g.mu.Unlock()
}

// drain blocks until no operation holds a slot.
func (g *asyncGate) drain() {
	g.mu.Lock()
	for g.inflight > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// close refuses further acquires and wakes every waiter.
func (g *asyncGate) close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// shedHint reports whether ctx carries a scheduling hint on a lane the
// admission scheduler wants shed right now. The caller records the actual
// preemption with shedPreempt — only when it really rolled work back.
func (e *Executor) shedHint(ctx context.Context) bool {
	if e.sched == nil {
		return false
	}
	h, ok := sched.HintFrom(ctx)
	return ok && e.sched.ShouldShed(h.Lane)
}

// shedPreempt records one shed event that rolled back n runs.
func (e *Executor) shedPreempt(n int) {
	e.sched.Preempted()
	e.ins.schedPreemptions.Inc()
	e.ins.schedShedRuns.Add(float64(n))
}

// submitAsync is the shared async submission path: it claims the handle,
// takes an in-flight slot, and dispatches the operation body to the
// shared persistent worker pool. Claim failures (ErrBusy, wrong state,
// ErrFreed) and a closed executor resolve the ticket immediately;
// otherwise the ticket completes when the body has committed the handle's
// final state. Speculative work (per the context's sched.Hint) yields here
// with ErrShed — before taking a slot — when the scheduler reports a
// starved critical waiter.
func (e *Executor) submitAsync(ctx context.Context, h *Handle, op string, from, to State, run func() error) *Ticket {
	t := newTicket(op, h.name)
	if err := e.claim(h, from, to, t); err != nil {
		t.complete(err)
		return t
	}
	if e.shedHint(ctx) {
		e.shedPreempt(1)
		h.commit(from)
		t.complete(fmt.Errorf("executor: %s %s: %w", op, h.name, ErrShed))
		return t
	}
	e.ins.asyncSubmitted(op).Inc()
	timed := e.obs != nil
	var tSubmit float64
	if timed {
		tSubmit = e.sinceEpoch()
	}
	waited, err := e.gate.acquire(ctx)
	if err != nil {
		// Closed (or the context expired) while waiting for a slot: nothing
		// ran, so the claim rolls straight back to the state it came from.
		h.commit(from)
		t.complete(fmt.Errorf("executor: %s %s: %w", op, h.name, err))
		return t
	}
	if waited {
		e.ins.asyncBackpressure.Inc()
	}
	compress.Go(func() {
		if timed {
			// The queue stage: submission to execution start. The swap
			// body records its own swap-out/swap-in span after this.
			e.obs.Span("async-queue", op+":"+t.name, tSubmit, e.sinceEpoch())
		}
		err := run() // commits the handle state before returning
		t.complete(err)
		e.gate.release()
	})
	return t
}

// SwapOutAsync is SwapOut as a pipeline stage: it claims the handle and
// returns a Ticket immediately (blocking only for an in-flight slot when
// the window is full). Misuse — the handle busy, already swapped, or
// freed — resolves the ticket with the same error the synchronous call
// would return.
func (e *Executor) SwapOutAsync(h *Handle, doCompress bool, alg compress.Algorithm) *Ticket {
	return e.SwapOutAsyncCtx(context.Background(), h, doCompress, alg)
}

// SwapOutAsyncCtx is SwapOutAsync with deadline-aware slot acquisition:
// if ctx is done before a slot in the bounded window frees up, the ticket
// resolves with the context's error and the handle rolls back to Resident
// untouched. The context governs only the submission wait — once the
// operation is dispatched it runs to completion regardless of ctx (use
// Ticket.WaitContext to bound the wait for the result).
func (e *Executor) SwapOutAsyncCtx(ctx context.Context, h *Handle, doCompress bool, alg compress.Algorithm) *Ticket {
	return e.submitAsync(ctx, h, "swap-out", Resident, SwappingOut, func() error {
		return e.swapOut(h, doCompress, alg)
	})
}

// SwapInAsync is SwapIn as a pipeline stage; see SwapOutAsync for the
// ticket semantics.
func (e *Executor) SwapInAsync(h *Handle) *Ticket {
	return e.SwapInAsyncCtx(context.Background(), h)
}

// SwapInAsyncCtx is SwapInAsync with deadline-aware slot acquisition; see
// SwapOutAsyncCtx for the context semantics.
func (e *Executor) SwapInAsyncCtx(ctx context.Context, h *Handle) *Ticket {
	return e.submitAsync(ctx, h, "swap-in", Swapped, SwappingIn, func() error {
		return e.swapIn(h)
	})
}

// Prefetch requests that the tensor be resident ahead of its consumer —
// DELTA-style lookahead. It is an idempotent SwapInAsync: a Resident
// handle completes immediately with nil; a handle already being swapped
// in *asynchronously* returns that operation's ticket (both callers await
// one restore); only a Swapped handle issues new work. A handle being
// swapped out, freed, or held by a synchronous SwapIn resolves with
// ErrBusy/ErrFreed like any other misuse.
func (e *Executor) Prefetch(h *Handle) *Ticket {
	return e.PrefetchCtx(context.Background(), h)
}

// PrefetchCtx is Prefetch with deadline-aware slot acquisition; see
// SwapOutAsyncCtx for the context semantics.
func (e *Executor) PrefetchCtx(ctx context.Context, h *Handle) *Ticket {
	h.mu.Lock()
	switch h.state {
	case Resident:
		h.mu.Unlock()
		return completedTicket("prefetch", h.name, nil)
	case SwappingIn:
		if t := h.pending; t != nil {
			h.mu.Unlock()
			return t
		}
		name := h.name
		h.mu.Unlock()
		e.ins.busyRejections.Inc()
		return completedTicket("prefetch", name,
			fmt.Errorf("%w: %s (synchronous swap-in in flight)", ErrBusy, name))
	}
	h.mu.Unlock()
	// The state may change between the peek above and the claim below;
	// submitAsync re-checks under the handle lock and resolves the ticket
	// with the accurate error if it lost the race. A tier-resident payload
	// is staged back into the host pool first (read-ahead): even if the
	// restore then fails on device pressure — common for speculative work —
	// the disk fault has been paid and the eventual demand swap-in reads
	// host memory.
	return e.submitAsync(ctx, h, "prefetch", Swapped, SwappingIn, func() error {
		e.stageFromTier(h)
		return e.swapIn(h)
	})
}

// Drain blocks until every asynchronous operation in flight at any point
// during the call has completed and committed its handle state — swap
// work on the main window and tier demotions/promotions on theirs. It is
// a barrier, not a shutdown: submissions stay legal during and after a
// drain (a concurrent submitter can extend the wait). All tickets issued
// before Drain returns are resolved once it does.
func (e *Executor) Drain() {
	e.gate.drain()
	e.tierGate.drain()
}

// InFlight returns the number of asynchronous operations currently
// holding a slot in the bounded window.
func (e *Executor) InFlight() int {
	e.gate.mu.Lock()
	defer e.gate.mu.Unlock()
	return e.gate.inflight
}

// Close drains the async pipeline and shuts the executor's intake:
// subsequent Register calls and async submissions fail with ErrClosed.
// Live handles remain readable and may still be driven synchronously
// (swapping in a tensor you still hold is not new work). Close is
// idempotent.
func (e *Executor) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	// The watermark demoter stops first so background demotions cannot
	// extend the tier-gate drain below.
	e.stopWatermark()
	e.gate.close()
	e.gate.drain()
	e.tierGate.close()
	e.tierGate.drain()
	return nil
}
