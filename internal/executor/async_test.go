package executor

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/metrics"
	"cswap/internal/tensor"
)

// TestAsyncPipelineOverlap is the acceptance scenario: several tensors'
// swap-outs (and later prefetches) are genuinely in flight concurrently —
// the in-flight gauge observes > 1 — every restore is byte-exact under
// Verify, and the pipeline drains clean. Run with -race.
func TestAsyncPipelineOverlap(t *testing.T) {
	obs := metrics.NewObserver()
	// Delay every codec op slightly so the operations demonstrably overlap
	// instead of racing to completion between submissions.
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Delay, Delay: 2 * time.Millisecond, Every: 1},
		faultinject.Fault{Site: faultinject.SiteDecode, Mode: faultinject.Delay, Delay: 2 * time.Millisecond, Every: 1},
	)
	e, err := New(Config{
		DeviceCapacity: 16 << 20,
		HostCapacity:   32 << 20,
		Launch:         compress.Launch{Grid: 8, Block: 64},
		Verify:         true,
		MaxInFlight:    4,
		Observer:       obs,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	const tensors = 4
	gen := tensor.NewGenerator(51)
	handles := make([]*Handle, tensors)
	want := make([][]float32, tensors)
	for i := range handles {
		tn := gen.Uniform(20000, 0.6)
		want[i] = append([]float32(nil), tn.Data...)
		h, err := e.Register(fmt.Sprintf("t%d", i), tn)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// Issue all swap-outs without waiting — the pipelined forward pass.
	outs := make([]*Ticket, tensors)
	for i, h := range handles {
		outs[i] = e.SwapOutAsync(h, true, compress.Algorithms()[i%4])
	}
	e.Drain()
	for i, tk := range outs {
		if err := tk.Wait(); err != nil {
			t.Fatalf("swap-out %d: %v", i, err)
		}
		if handles[i].State() != Swapped {
			t.Fatalf("tensor %d not Swapped after drained swap-out", i)
		}
	}

	// ≥ 2 operations were in the window at once: slots are taken at
	// submission and the delays keep the first op alive past the second
	// submission, so the peak gauge must exceed 1.
	peak := obs.Reg().Gauge("executor_async_inflight_peak").Value()
	if peak <= 1 {
		t.Fatalf("in-flight peak = %v, want > 1 (no overlap observed)", peak)
	}
	if g := obs.Reg().Gauge("executor_async_inflight").Value(); g != 0 {
		t.Fatalf("in-flight gauge = %v after Drain, want 0", g)
	}

	// Prefetch everything back — the pipelined backward pass.
	ins := make([]*Ticket, tensors)
	for i := tensors - 1; i >= 0; i-- {
		ins[i] = e.Prefetch(handles[i])
	}
	for i, tk := range ins {
		if err := tk.Wait(); err != nil {
			t.Fatalf("prefetch %d: %v", i, err)
		}
		got, err := handles[i].Data()
		if err != nil {
			t.Fatal(err)
		}
		for k := range want[i] {
			if math.Float32bits(got[k]) != math.Float32bits(want[i][k]) {
				t.Fatalf("tensor %d: restored mismatch at %d", i, k)
			}
		}
	}
	e.Drain()

	// The queue-depth histogram saw one observation per submission.
	depth := obs.Reg().HistogramWith("executor_async_queue_depth", metrics.ExpBuckets(1, 2, 10))
	if depth.Count() != 2*tensors {
		t.Fatalf("queue-depth observations = %d, want %d", depth.Count(), 2*tensors)
	}
	// Per-stage spans landed on the timeline: the queue stage plus both
	// swap legs.
	streams := obs.Trace.Streams()
	found := map[string]bool{}
	for _, s := range streams {
		found[s] = true
	}
	for _, s := range []string{"async-queue", "swap-out", "swap-in"} {
		if !found[s] {
			t.Fatalf("no %q spans on the timeline (streams %v)", s, streams)
		}
	}
	if st := e.Stats(); st.SwapOuts != tensors || st.SwapIns != tensors || st.Verified != tensors {
		t.Fatalf("stats %+v", st)
	}
	for _, h := range handles {
		if err := e.Free(h); err != nil {
			t.Fatal(err)
		}
	}
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatal("async pipeline leaked memory")
	}
}

// TestAsyncConcurrentMisuseReturnsErrBusy drives one handle from two
// sides at once: the claim is taken synchronously at submission, so the
// second operation must observe ErrBusy — never a race or a corrupted
// tensor. Run with -race.
func TestAsyncConcurrentMisuseReturnsErrBusy(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Delay, Delay: 20 * time.Millisecond},
	)
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Launch:         compress.Launch{Grid: 4, Block: 64},
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn := tensor.NewGenerator(52).Uniform(20000, 0.6)
	want := append([]float32(nil), tn.Data...)
	h, err := e.Register("x", tn)
	if err != nil {
		t.Fatal(err)
	}

	first := e.SwapOutAsync(h, true, compress.ZVC)
	// The first submission claimed SwappingOut before returning and the
	// injected delay keeps it in flight, so every concurrent operation on
	// the same handle must fail fast with ErrBusy.
	second := e.SwapOutAsync(h, true, compress.ZVC)
	if err := second.Wait(); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent SwapOutAsync err = %v, want ErrBusy", err)
	}
	if err := e.SwapOut(h, true, compress.ZVC); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent SwapOut err = %v, want ErrBusy", err)
	}
	if err := e.SwapIn(h); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent SwapIn err = %v, want ErrBusy", err)
	}
	if err := e.Free(h); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent Free err = %v, want ErrBusy", err)
	}
	if err := first.Wait(); err != nil {
		t.Fatalf("winning swap-out: %v", err)
	}
	if st := e.Stats(); st.BusyRejections != 4 {
		t.Fatalf("busy rejections = %d, want 4", st.BusyRejections)
	}

	// The tensor survived the contention bit-exactly.
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	got, err := h.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("mismatch at %d after contention", i)
		}
	}
}

// TestSyncConcurrentMisuseReturnsErrBusy is the same contract on the
// fully synchronous API: two goroutines calling SwapOut on one handle,
// one wins, the other gets ErrBusy (the delay pins the loser inside the
// winner's window). Run with -race.
func TestSyncConcurrentMisuseReturnsErrBusy(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Delay, Delay: 20 * time.Millisecond},
	)
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Launch:         compress.Launch{Grid: 4, Block: 64},
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Register("x", tensor.NewGenerator(53).Uniform(20000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	winner := make(chan error, 1)
	go func() {
		close(started)
		winner <- e.SwapOut(h, true, compress.ZVC)
	}()
	<-started
	// Wait until the winner holds the claim, then collide with it.
	for h.State() != SwappingOut {
		time.Sleep(100 * time.Microsecond)
	}
	if err := e.SwapOut(h, true, compress.ZVC); !errors.Is(err, ErrBusy) {
		t.Fatalf("loser err = %v, want ErrBusy", err)
	}
	if err := <-winner; err != nil {
		t.Fatalf("winner err = %v", err)
	}
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncBackpressureBoundsWindow pins the bounded window: with
// MaxInFlight=2 and slow encodes, six submissions never hold more than
// two slots, and at least one submitter had to wait.
func TestAsyncBackpressureBoundsWindow(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Delay, Delay: 2 * time.Millisecond, Every: 1},
	)
	e, err := New(Config{
		DeviceCapacity: 16 << 20,
		HostCapacity:   32 << 20,
		Launch:         compress.Launch{Grid: 4, Block: 64},
		Verify:         true,
		MaxInFlight:    2,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := tensor.NewGenerator(54)
	var tickets []*Ticket
	for i := 0; i < 6; i++ {
		h, err := e.Register(fmt.Sprintf("t%d", i), gen.Uniform(20000, 0.6))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, e.SwapOutAsync(h, true, compress.ZVC))
		if got := e.InFlight(); got > 2 {
			t.Fatalf("in-flight %d exceeds MaxInFlight 2", got)
		}
	}
	e.Drain()
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("swap-out %d: %v", i, err)
		}
	}
	peak := int(e.reg.Gauge("executor_async_inflight_peak").Value())
	if peak != 2 {
		t.Fatalf("in-flight peak = %d, want exactly the window size 2", peak)
	}
	if bp := e.reg.Counter("executor_async_backpressure_total").Value(); bp < 1 {
		t.Fatalf("backpressure stalls = %v, want >= 1 (six submissions through a window of two)", bp)
	}
}

// TestAsyncFaultInterleavings extends fault injection to async
// interleavings: encode failures and transfer-in corruption keep firing
// while several swaps are in flight, and every tensor still restores
// bit-exactly (degraded where needed) with no leaks. Run with -race.
func TestAsyncFaultInterleavings(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Fail, After: 3, Every: 7},
		faultinject.Fault{Site: faultinject.SiteTransferIn, Mode: faultinject.Corrupt, After: 2, Every: 5},
	)
	e, err := New(Config{
		DeviceCapacity: 16 << 20,
		HostCapacity:   64 << 20,
		Launch:         compress.Launch{Grid: 8, Block: 64},
		Verify:         true,
		MaxInFlight:    8,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	const width = 8
	gen := tensor.NewGenerator(55)
	for r := 0; r < rounds; r++ {
		handles := make([]*Handle, width)
		want := make([][]float32, width)
		outs := make([]*Ticket, width)
		for i := 0; i < width; i++ {
			tn := gen.Uniform(10000, 0.6)
			want[i] = append([]float32(nil), tn.Data...)
			h, err := e.Register(fmt.Sprintf("r%d-t%d", r, i), tn)
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
			outs[i] = e.SwapOutAsync(h, true, compress.Algorithms()[(r+i)%4])
		}
		ins := make([]*Ticket, width)
		for i := 0; i < width; i++ {
			if err := outs[i].Wait(); err != nil {
				t.Fatalf("round %d swap-out %d: %v", r, i, err)
			}
			ins[i] = e.Prefetch(handles[i])
		}
		for i := 0; i < width; i++ {
			if err := ins[i].Wait(); err != nil {
				t.Fatalf("round %d prefetch %d: %v", r, i, err)
			}
			got, err := handles[i].Data()
			if err != nil {
				t.Fatal(err)
			}
			for k := range want[i] {
				if math.Float32bits(got[k]) != math.Float32bits(want[i][k]) {
					t.Fatalf("round %d tensor %d: mismatch at %d", r, i, k)
				}
			}
			if err := e.Free(handles[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Drain()
	st := e.Stats()
	if st.EncodeFallbacks == 0 {
		t.Fatalf("encode faults never fired under async interleaving: %+v", st)
	}
	if st.DecodeRecoveries == 0 {
		t.Fatalf("transfer corruption never recovered under async interleaving: %+v", st)
	}
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatal("faulty async interleavings leaked memory")
	}
}

// TestPrefetchSemantics pins Prefetch's idempotence: resident handles
// complete immediately, a duplicate prefetch joins the in-flight restore
// (one swap-in total), and misuse surfaces like any other operation.
func TestPrefetchSemantics(t *testing.T) {
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteDecode, Mode: faultinject.Delay, Delay: 10 * time.Millisecond},
	)
	e, err := New(Config{
		DeviceCapacity: 1 << 22,
		HostCapacity:   1 << 22,
		Launch:         compress.Launch{Grid: 4, Block: 64},
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Register("x", tensor.NewGenerator(56).Uniform(20000, 0.6))
	if err != nil {
		t.Fatal(err)
	}

	// Prefetching a resident tensor is a completed no-op.
	if err := e.Prefetch(h).Wait(); err != nil {
		t.Fatalf("prefetch of resident handle: %v", err)
	}
	if st := e.Stats(); st.SwapIns != 0 {
		t.Fatalf("no-op prefetch swapped in: %+v", st)
	}

	if err := e.SwapOut(h, true, compress.ZVC); err != nil {
		t.Fatal(err)
	}
	// Two prefetches of a swapped tensor share one restore: the second
	// joins the first's ticket (the injected decode delay holds the first
	// in flight across the second submission).
	t1 := e.Prefetch(h)
	t2 := e.Prefetch(h)
	if err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Wait(); err != nil {
		t.Fatalf("joined prefetch: %v", err)
	}
	if t1 != t2 {
		t.Fatal("duplicate prefetch did not join the in-flight ticket")
	}
	if st := e.Stats(); st.SwapIns != 1 {
		t.Fatalf("duplicate prefetch restored twice: %+v", st)
	}

	// Prefetch of a freed handle fails like everything else.
	if err := e.Free(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Prefetch(h).Wait(); !errors.Is(err, ErrFreed) {
		t.Fatalf("prefetch after Free err = %v, want ErrFreed", err)
	}
}

// TestDrainBarrier pins Drain: trivially done when idle, and after it
// returns every previously issued ticket is resolved and every handle is
// in a stable state.
func TestDrainBarrier(t *testing.T) {
	e := newTestExecutor(t, 16<<20, 32<<20)
	e.Drain() // no work: returns immediately

	gen := tensor.NewGenerator(57)
	var handles []*Handle
	var tickets []*Ticket
	for i := 0; i < 6; i++ {
		h, err := e.Register(fmt.Sprintf("t%d", i), gen.Uniform(10000, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		tickets = append(tickets, e.SwapOutAsync(h, true, compress.RLE))
	}
	e.Drain()
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d unresolved after Drain", i)
		}
		if err := tk.Err(); err != nil {
			t.Fatalf("swap-out %d: %v", i, err)
		}
	}
	for i, h := range handles {
		if st := h.State(); st != Swapped {
			t.Fatalf("handle %d in state %s after Drain, want swapped", i, st)
		}
	}
}

// TestCloseRejectsNewWork pins Close: it drains, then Register and async
// submissions fail with ErrClosed (and the rejected registration's device
// reservation is released), while live handles stay usable synchronously.
func TestCloseRejectsNewWork(t *testing.T) {
	e := newTestExecutor(t, 1<<22, 1<<22)
	gen := tensor.NewGenerator(58)
	h, err := e.Register("kept", gen.Uniform(10000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	tk := e.SwapOutAsync(h, true, compress.ZVC)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("in-flight work must complete across Close: %v", err)
	}

	used := e.DeviceStats().Used
	if _, err := e.Register("late", gen.Uniform(1000, 0.5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close err = %v, want ErrClosed", err)
	}
	if got := e.DeviceStats().Used; got != used {
		t.Fatalf("rejected registration leaked device memory: %d -> %d", used, got)
	}
	if err := e.SwapInAsync(h).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("SwapInAsync after Close err = %v, want ErrClosed", err)
	}
	if st := h.State(); st != Swapped {
		t.Fatalf("rejected submission moved the handle to %s", st)
	}
	// The synchronous path on a live handle still works after Close.
	if err := e.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Data(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestAsyncManyStreams hammers the pipeline from several submitting
// goroutines at once — distinct handles, shared window — as a -race
// stress of the gate, the pool sharing, and the ticket lifecycle.
func TestAsyncManyStreams(t *testing.T) {
	e, err := New(Config{
		DeviceCapacity: 32 << 20,
		HostCapacity:   64 << 20,
		Launch:         compress.Launch{Grid: 8, Block: 64},
		Verify:         true,
		MaxInFlight:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := tensor.NewGenerator(int64(100 + w))
			for r := 0; r < rounds; r++ {
				tn := gen.Uniform(8000, 0.6)
				h, err := e.Register(fmt.Sprintf("w%d-r%d", w, r), tn)
				if err != nil {
					errs <- err
					return
				}
				if err := e.SwapOutAsync(h, true, compress.Algorithms()[(w+r)%4]).Wait(); err != nil {
					errs <- fmt.Errorf("async swap out: %w", err)
					return
				}
				if err := e.Prefetch(h).Wait(); err != nil {
					errs <- fmt.Errorf("prefetch: %w", err)
					return
				}
				if err := e.Free(h); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	e.Drain()
	if e.Live() != 0 || e.DeviceStats().Used != 0 || e.HostStats().Used != 0 {
		t.Fatal("async streams leaked memory")
	}
	if st := e.Stats(); st.SwapOuts != workers*rounds || st.SwapIns != workers*rounds {
		t.Fatalf("stats %+v", st)
	}
}
