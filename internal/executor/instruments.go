package executor

import (
	"time"

	"cswap/internal/compress"
	"cswap/internal/metrics"
)

// instruments are the executor's pre-resolved registry cells. They are
// resolved once at construction — the swap hot path updates lock-free
// atomic counters with no map lookups and no allocations, which is what
// keeps the nil-Observer configuration at its pre-registry cost.
type instruments struct {
	swapOuts, swapIns               *metrics.Counter
	rawBytes, movedBytes            *metrics.Counter
	compressed, verified            *metrics.Counter
	encodeFallbacks, allocFallbacks *metrics.Counter
	decodeRetries, decodeRecoveries *metrics.Counter
	busyRejections                  *metrics.Counter

	// Async pipeline instruments: the in-flight gauge and its high-water
	// mark, the queue-depth histogram (one observation per submission, of
	// the window occupancy it saw), backpressure stalls, and per-op
	// submission counters.
	asyncInflight     *metrics.Gauge
	asyncPeak         *metrics.Gauge
	asyncDepth        *metrics.Histogram
	asyncBackpressure *metrics.Counter
	submittedOut      *metrics.Counter
	submittedIn       *metrics.Counter
	submittedPrefetch *metrics.Counter

	// Block-pool batch instruments: blocks and coalesced runs moved by
	// batch operations, the per-batch size distribution (requested IDs),
	// and the coalescing ratio (runs/blocks, 1 = nothing merged).
	batchBlocks   *metrics.Counter
	batchRuns     *metrics.Counter
	batchSize     *metrics.Histogram
	coalesceRatio *metrics.Histogram

	// Disk-tier instruments: bytes resident in the spill tier, demotions
	// (host→tier), promotions (tier→host-free restore), tier hits (restores
	// whose payload was read from the tier), and the tier I/O pipeline's
	// own bounded window.
	tierOccupancy  *metrics.Gauge
	tierDemotions  *metrics.Counter
	tierPromotions *metrics.Counter
	tierHits       *metrics.Counter
	tierInflight   *metrics.Gauge
	tierPeak       *metrics.Gauge
	tierDepth      *metrics.Histogram

	// Scheduler-coupling and background-demotion instruments: shed events
	// (one per preemption) and the runs they rolled back, watermark-timer
	// demotions (a labeled sibling of tierDemotions, so dashboards can
	// split inline pressure demotion from background housekeeping), and
	// tier payloads staged host-ward by prefetch read-ahead.
	schedPreemptions   *metrics.Counter
	schedShedRuns      *metrics.Counter
	watermarkDemotions *metrics.Counter
	tierReadahead      *metrics.Counter
}

func newInstruments(r *metrics.Registry) instruments {
	return instruments{
		swapOuts:         r.Counter("executor_swap_outs_total"),
		swapIns:          r.Counter("executor_swap_ins_total"),
		rawBytes:         r.Counter("executor_raw_bytes_total"),
		movedBytes:       r.Counter("executor_moved_bytes_total"),
		compressed:       r.Counter("executor_compressed_tensors_total"),
		verified:         r.Counter("executor_verified_total"),
		encodeFallbacks:  r.Counter("executor_fallbacks_total", metrics.L("site", "encode")),
		allocFallbacks:   r.Counter("executor_fallbacks_total", metrics.L("site", "host-alloc")),
		decodeRetries:    r.Counter("executor_decode_retries_total"),
		decodeRecoveries: r.Counter("executor_decode_recoveries_total"),
		busyRejections:   r.Counter("executor_busy_rejections_total"),

		asyncInflight:     r.Gauge("executor_async_inflight"),
		asyncPeak:         r.Gauge("executor_async_inflight_peak"),
		asyncDepth:        r.HistogramWith("executor_async_queue_depth", metrics.ExpBuckets(1, 2, 10)),
		asyncBackpressure: r.Counter("executor_async_backpressure_total"),
		submittedOut:      r.Counter("executor_async_submitted_total", metrics.L("op", "swap-out")),
		submittedIn:       r.Counter("executor_async_submitted_total", metrics.L("op", "swap-in")),
		submittedPrefetch: r.Counter("executor_async_submitted_total", metrics.L("op", "prefetch")),

		batchBlocks: r.Counter("executor_batch_blocks_total"),
		batchRuns:   r.Counter("executor_batch_runs_total"),
		batchSize:   r.HistogramWith("executor_batch_size_blocks", metrics.ExpBuckets(1, 2, 12)),
		coalesceRatio: r.HistogramWith("executor_batch_coalescing_ratio",
			metrics.ExpBuckets(1.0/64, 2, 7)),

		tierOccupancy:  r.Gauge("executor_tier_occupancy_bytes"),
		tierDemotions:  r.Counter("executor_tier_demotions_total"),
		tierPromotions: r.Counter("executor_tier_promotions_total"),
		tierHits:       r.Counter("executor_tier_hits_total"),
		tierInflight:   r.Gauge("executor_tier_inflight"),
		tierPeak:       r.Gauge("executor_tier_inflight_peak"),
		tierDepth:      r.HistogramWith("executor_tier_queue_depth", metrics.ExpBuckets(1, 2, 6)),

		schedPreemptions:   r.Counter("executor_sched_preemptions_total"),
		schedShedRuns:      r.Counter("executor_sched_shed_runs_total"),
		watermarkDemotions: r.Counter("executor_tier_demotions_total", metrics.L("reason", "watermark")),
		tierReadahead:      r.Counter("executor_tier_readahead_total"),
	}
}

// asyncSubmitted returns the pre-resolved submission counter for an op.
func (i *instruments) asyncSubmitted(op string) *metrics.Counter {
	switch op {
	case "swap-out", "batch-swap-out":
		return i.submittedOut
	case "swap-in", "batch-swap-in":
		return i.submittedIn
	default:
		return i.submittedPrefetch
	}
}

// codecLabel names the payload encoding for per-codec series: the codec
// for compressed blobs, "raw" for uncompressed ones (including fallbacks).
func codecLabel(compressed bool, alg compress.Algorithm) metrics.Label {
	if compressed {
		return metrics.L("codec", alg.String())
	}
	return metrics.L("codec", "raw")
}

// observeSwapOut records the deep (Observer-only) view of one swap-out:
// per-codec volume, encode timing, a wall-clock span, and fallback events.
// t0/t1 bound the whole operation in seconds since the executor epoch.
func (e *Executor) observeSwapOut(name string, compressed bool, alg compress.Algorithm, blobLen int, encDur time.Duration, t0, t1 float64, encodeFellBack, allocFellBack bool) {
	o := e.obs
	if o == nil {
		return
	}
	r := o.Reg()
	lab := codecLabel(compressed, alg)
	r.Counter("executor_moved_bytes_by_codec_total", lab).Add(float64(blobLen))
	r.HistogramWith("executor_blob_bytes", metrics.ByteBuckets(), lab).Observe(float64(blobLen))
	if encDur > 0 {
		r.Histogram("executor_encode_seconds", lab).Observe(encDur.Seconds())
	}
	o.Span("swap-out", "o:"+name, t0, t1)
	if encodeFellBack {
		o.Emit("executor.fallback", "tensor", name, "site", "encode")
	}
	if allocFellBack {
		o.Emit("executor.fallback", "tensor", name, "site", "host-alloc")
	}
}

// observeSwapIn records the deep view of one swap-in: decode timing, a
// wall-clock span, and retry/recovery events.
func (e *Executor) observeSwapIn(name string, compressed bool, alg compress.Algorithm, decDur time.Duration, t0, t1 float64, retried, recovered bool) {
	o := e.obs
	if o == nil {
		return
	}
	lab := codecLabel(compressed, alg)
	if decDur > 0 {
		o.Reg().Histogram("executor_decode_seconds", lab).Observe(decDur.Seconds())
	}
	o.Span("swap-in", "p:"+name, t0, t1)
	if retried {
		outcome := "failed"
		if recovered {
			outcome = "recovered"
		}
		o.Emit("executor.decode_retry", "tensor", name, "outcome", outcome)
	}
}

// sinceEpoch is the executor's wall clock for spans, in seconds.
func (e *Executor) sinceEpoch() float64 { return time.Since(e.epoch).Seconds() }
