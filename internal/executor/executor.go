// Package executor is the functional swapping executor: where internal/swap
// simulates *when* things happen, this package actually does them. Real
// float32 tensors are registered into a fixed-capacity device pool, swapped
// out through the real compression codecs (partitioned by the tuned launch
// geometry) into a pinned-host pool, and swapped back in bit-exactly — the
// data path of Figure 4's "swapping executor", with the memory-pool reuse
// the paper's prototype takes from Torch.
package executor

import (
	"errors"
	"fmt"
	"sync"

	"cswap/internal/compress"
	"cswap/internal/devmem"
	"cswap/internal/tensor"
)

// Common executor errors.
var (
	ErrNotResident  = errors.New("executor: tensor not resident on device")
	ErrNotSwapped   = errors.New("executor: tensor not swapped out")
	ErrFreed        = errors.New("executor: tensor already freed")
	ErrVerification = errors.New("executor: swapped-in tensor differs from original")
)

// Config configures an executor.
type Config struct {
	// DeviceCapacity and HostCapacity are the pool sizes in bytes.
	DeviceCapacity, HostCapacity int64
	// Launch is the kernel geometry used to partition parallel
	// (de)compression (the BO-tuned launch in a full deployment).
	Launch compress.Launch
	// Verify enables a checksum comparison after every swap-in. It is the
	// executor's integrity guarantee during bring-up and tests; disable
	// for throughput measurements.
	Verify bool
}

// Executor moves real tensors between a device pool and a host pool.
type Executor struct {
	cfg    Config
	device *devmem.Pool
	host   *devmem.Pool
	cache  *devmem.Cache

	// mu guards the handle registry and stats; the per-handle state
	// machine is guarded by it too, so concurrent swap streams are safe
	// as long as each handle is driven by one goroutine at a time (the
	// codec work itself runs outside the lock).
	mu     sync.Mutex
	nextID int
	live   map[int]*Handle

	stats Stats
}

// Stats accumulates executor activity.
type Stats struct {
	SwapOuts, SwapIns int
	// RawBytes is the uncompressed volume swapped out; MovedBytes the
	// volume that actually crossed the (simulated) link.
	RawBytes, MovedBytes int64
	// CompressedTensors counts swap-outs that used a codec.
	CompressedTensors int
	Verified          int
}

// Ratio returns moved/raw bytes over the executor's lifetime.
func (s Stats) Ratio() float64 {
	if s.RawBytes == 0 {
		return 1
	}
	return float64(s.MovedBytes) / float64(s.RawBytes)
}

// State of a handle's backing storage.
type State int

// Handle states.
const (
	Resident State = iota // data lives in the device pool
	Swapped               // data lives (possibly compressed) in the host pool
	Freed                 // released
)

// Handle identifies one registered tensor.
type Handle struct {
	id   int
	name string

	state    State
	data     []float32 // resident payload
	devBlock *devmem.Block

	blob       []byte // swapped payload (codec blob or raw bytes)
	hostBlock  *devmem.Block
	alg        compress.Algorithm
	compressed bool
	elems      int
	checksum   uint64
}

// Name returns the tensor's registration name.
func (h *Handle) Name() string { return h.name }

// State returns the handle's current storage state.
func (h *Handle) State() State { return h.state }

// Bytes returns the uncompressed tensor size.
func (h *Handle) Bytes() int64 { return int64(h.elems) * tensor.BytesPerElement }

// Data returns the resident payload, or ErrNotResident.
func (h *Handle) Data() ([]float32, error) {
	if h.state != Resident {
		return nil, fmt.Errorf("%w: %s", ErrNotResident, h.name)
	}
	return h.data, nil
}

// New creates an executor with the given pools.
func New(cfg Config) (*Executor, error) {
	if cfg.DeviceCapacity <= 0 || cfg.HostCapacity <= 0 {
		return nil, fmt.Errorf("executor: capacities must be positive")
	}
	if cfg.Launch.Grid == 0 {
		cfg.Launch = compress.Launch{Grid: 128, Block: 64}
	}
	if err := cfg.Launch.Validate(); err != nil {
		return nil, err
	}
	return &Executor{
		cfg:    cfg,
		device: devmem.NewPool("device", cfg.DeviceCapacity),
		host:   devmem.NewPool("pinned-host", cfg.HostCapacity),
		cache:  devmem.NewCache(),
		live:   map[int]*Handle{},
	}, nil
}

// Register places a tensor into device memory, taking ownership of its
// data slice. It fails with devmem.ErrOutOfMemory when the device pool is
// full — the caller must swap something out first, exactly the pressure
// that motivates swapping.
func (e *Executor) Register(name string, t *tensor.Tensor) (*Handle, error) {
	block, err := e.device.Alloc(int64(t.SizeBytes()))
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.nextID++
	id := e.nextID
	e.mu.Unlock()
	h := &Handle{
		id:       id,
		name:     name,
		state:    Resident,
		data:     t.Data,
		devBlock: block,
		elems:    t.Len(),
		checksum: checksum(t.Data),
	}
	e.mu.Lock()
	e.live[h.id] = h
	e.mu.Unlock()
	return h, nil
}

// SwapOut moves the tensor to the host pool. With compress true, the data
// is encoded with alg (partitioned by the configured launch) and only the
// compressed bytes consume host capacity and count as moved; otherwise the
// raw little-endian bytes move.
func (e *Executor) SwapOut(h *Handle, doCompress bool, alg compress.Algorithm) error {
	switch h.state {
	case Swapped:
		return fmt.Errorf("executor: %s already swapped out", h.name)
	case Freed:
		return fmt.Errorf("%w: %s", ErrFreed, h.name)
	}
	var blob []byte
	var err error
	if doCompress {
		blob, err = compress.ParallelEncode(alg, h.data, e.cfg.Launch)
		if err != nil {
			return fmt.Errorf("executor: compress %s: %w", h.name, err)
		}
	} else {
		blob = rawEncode(h.data, e.cache)
	}
	hostBlock, err := e.host.Alloc(int64(len(blob)))
	if err != nil {
		return fmt.Errorf("executor: host pool: %w", err)
	}
	if err := h.devBlock.Free(); err != nil {
		_ = hostBlock.Free()
		return err
	}
	h.blob = blob
	h.hostBlock = hostBlock
	h.alg = alg
	h.compressed = doCompress
	h.data = nil
	h.devBlock = nil
	h.state = Swapped

	e.mu.Lock()
	e.stats.SwapOuts++
	e.stats.RawBytes += h.Bytes()
	e.stats.MovedBytes += int64(len(blob))
	if doCompress {
		e.stats.CompressedTensors++
	}
	e.mu.Unlock()
	return nil
}

// SwapIn restores the tensor to device memory, decompressing if needed and
// (when configured) verifying the payload against the registration
// checksum.
func (e *Executor) SwapIn(h *Handle) error {
	switch h.state {
	case Resident:
		return fmt.Errorf("executor: %s already resident", h.name)
	case Freed:
		return fmt.Errorf("%w: %s", ErrFreed, h.name)
	}
	devBlock, err := e.device.Alloc(h.Bytes())
	if err != nil {
		return fmt.Errorf("executor: device pool: %w", err)
	}
	var data []float32
	if h.compressed {
		data, err = compress.ParallelDecode(h.blob, e.cfg.Launch)
		if err != nil {
			_ = devBlock.Free()
			return fmt.Errorf("executor: decompress %s: %w", h.name, err)
		}
	} else {
		data = rawDecode(h.blob)
		e.cache.Put(h.blob)
	}
	if len(data) != h.elems {
		_ = devBlock.Free()
		return fmt.Errorf("executor: %s restored %d elements, want %d", h.name, len(data), h.elems)
	}
	if e.cfg.Verify {
		if checksum(data) != h.checksum {
			_ = devBlock.Free()
			return fmt.Errorf("%w: %s", ErrVerification, h.name)
		}
		e.mu.Lock()
		e.stats.Verified++
		e.mu.Unlock()
	}
	if err := h.hostBlock.Free(); err != nil {
		_ = devBlock.Free()
		return err
	}
	h.data = data
	h.devBlock = devBlock
	h.blob = nil
	h.hostBlock = nil
	h.state = Resident
	e.mu.Lock()
	e.stats.SwapIns++
	e.mu.Unlock()
	return nil
}

// Free releases the tensor from whichever pool holds it.
func (e *Executor) Free(h *Handle) error {
	switch h.state {
	case Resident:
		if err := h.devBlock.Free(); err != nil {
			return err
		}
	case Swapped:
		if err := h.hostBlock.Free(); err != nil {
			return err
		}
		if !h.compressed {
			e.cache.Put(h.blob)
		}
	case Freed:
		return fmt.Errorf("%w: %s", ErrFreed, h.name)
	}
	h.state = Freed
	h.data = nil
	h.blob = nil
	h.devBlock = nil
	h.hostBlock = nil
	e.mu.Lock()
	delete(e.live, h.id)
	e.mu.Unlock()
	return nil
}

// Stats returns a snapshot of executor activity.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// DeviceStats and HostStats expose pool accounting.
func (e *Executor) DeviceStats() devmem.Stats { return e.device.Stats() }

// HostStats exposes the pinned pool accounting.
func (e *Executor) HostStats() devmem.Stats { return e.host.Stats() }

// CacheStats exposes the buffer-cache accounting.
func (e *Executor) CacheStats() devmem.CacheStats { return e.cache.Stats() }

// Live returns the number of non-freed handles.
func (e *Executor) Live() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.live)
}

// checksum is FNV-1a over the float bit patterns.
func checksum(data []float32) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range data {
		bits := uint64(floatBits(v))
		for i := 0; i < 4; i++ {
			h ^= (bits >> (8 * uint(i))) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}
