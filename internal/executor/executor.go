// Package executor is the functional swapping executor: where internal/swap
// simulates *when* things happen, this package actually does them. Real
// float32 tensors are registered into a fixed-capacity device pool, swapped
// out through the real compression codecs (partitioned by the tuned launch
// geometry) into a pinned-host pool, and swapped back in bit-exactly — the
// data path of Figure 4's "swapping executor", with the memory-pool reuse
// the paper's prototype takes from Torch.
//
// # Failure semantics
//
// The executor never loses a tensor to a codec or allocator fault. Like
// cDMA's raw DMA engine beside the compressing one, a raw (uncompressed)
// path shadows every compressed swap-out: a codec encode failure or a
// host-pool allocation failure for the compressed blob degrades to a raw
// swap-out instead of erroring (counted in Stats.EncodeFallbacks /
// Stats.AllocFallbacks). On swap-in, the host blob is retained until the
// restore commits, so a decode or verification failure retries once from
// the retained copy before surfacing (Stats.DecodeRetries /
// Stats.DecodeRecoveries) — transient in-flight corruption cannot kill a
// training iteration, while persistent corruption surfaces as an error
// wrapped with codec and chunk context (compress.ChunkError), never as
// silent wrong data. Fault injection for all of these paths is wired
// through internal/faultinject via Config.Faults.
//
// # Concurrency
//
// Every handle carries a guarded state machine: an operation first claims
// the handle (Resident→SwappingOut, Swapped→SwappingIn) under the handle's
// lock, owns its storage exclusively while the transitional state holds,
// and commits the final state when done. Concurrent misuse of one handle —
// two goroutines swapping it at once, a Free racing a swap — fails fast
// with ErrBusy instead of corrupting memory. Distinct handles may always
// be driven concurrently; the async API (SwapOutAsync / SwapInAsync /
// Prefetch, see async.go) builds its bounded in-flight pipeline on exactly
// this guarantee.
package executor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cswap/internal/compress"
	"cswap/internal/devmem"
	"cswap/internal/faultinject"
	"cswap/internal/metrics"
	"cswap/internal/sched"
	"cswap/internal/tensor"
	"cswap/internal/tier"
)

// Common executor errors.
var (
	ErrNotResident  = errors.New("executor: tensor not resident on device")
	ErrNotSwapped   = errors.New("executor: tensor not swapped out")
	ErrFreed        = errors.New("executor: tensor already freed")
	ErrVerification = errors.New("executor: swapped-in tensor differs from original")
	// ErrBusy reports that another operation holds the handle: a swap is
	// in flight on it (SwappingOut/SwappingIn). The caller raced itself —
	// wait for the in-flight operation (its Ticket, or the synchronous
	// call) and retry.
	ErrBusy = errors.New("executor: handle busy")
	// ErrClosed reports that the executor has been closed; no new tensors
	// or async work are accepted.
	ErrClosed = errors.New("executor: closed")
	// ErrShed reports that speculative work was yielded at a run boundary
	// because the admission scheduler (Config.Sched) signalled a starved
	// critical waiter. The shed operation did not run: the handle (or the
	// batch's remaining runs) rolled back to the state it was claimed from,
	// so the caller may simply resubmit later — it is load shedding, not
	// failure.
	ErrShed = errors.New("executor: speculative work shed for critical backlog")
)

// DefaultMaxInFlight is the async pipeline's in-flight window when
// Config.MaxInFlight is zero.
const DefaultMaxInFlight = 4

// DefaultTierWatermarkInterval is how often the background watermark
// demoter wakes when Config.TierWatermark is set but no interval is given.
const DefaultTierWatermarkInterval = 100 * time.Millisecond

// ShedSignal is the narrow view of an admission scheduler the executor
// consults at run boundaries: whether work on a given lane should yield
// right now, and a callback to record that it did. It is deliberately NOT
// a slot pool — the executor keeps its own in-flight gate, so a scheduler
// passed here can never deadlock against it by holding both windows.
// internal/sched.Scheduler satisfies it.
type ShedSignal interface {
	// ShouldShed reports whether in-flight work on the lane should yield
	// its remaining runs to a starved higher-priority waiter.
	ShouldShed(lane sched.Lane) bool
	// Preempted records that one shed actually happened.
	Preempted()
}

// Config configures an executor.
type Config struct {
	// DeviceCapacity and HostCapacity are the pool sizes in bytes.
	DeviceCapacity, HostCapacity int64
	// Launch is the kernel geometry used to partition parallel
	// (de)compression (the BO-tuned launch in a full deployment).
	Launch compress.Launch
	// Verify enables a checksum comparison after every swap-in. It is the
	// executor's integrity guarantee during bring-up and tests; disable
	// for throughput measurements.
	Verify bool
	// MaxInFlight bounds how many asynchronous operations (SwapOutAsync,
	// SwapInAsync, Prefetch) may be in flight at once; a submission past
	// the bound blocks until a slot frees — backpressure, not an error.
	// Zero selects DefaultMaxInFlight. Synchronous SwapOut/SwapIn calls
	// do not consume slots.
	MaxInFlight int
	// Faults optionally injects deterministic failures into the data path
	// (codec work, pool allocations, transfers). Nil injects nothing.
	Faults *faultinject.Injector
	// Tier optionally attaches a disk-backed spill tier below the
	// pinned-host pool: under host pressure, cold swapped payloads demote
	// into it (ranked by compression ratio × re-access prediction) instead
	// of failing the allocation, and swap-ins promote back transparently.
	// Nil disables tiering; see tier.go.
	Tier *tier.Store
	// TierMaxInFlight bounds concurrent tier (disk) I/O — demotions and
	// promotion reads run under their own window so they never starve
	// foreground swaps of MaxInFlight slots. Zero selects
	// DefaultTierMaxInFlight.
	TierMaxInFlight int
	// TierWatermark, in (0,1), enables background watermark demotion: a
	// timer goroutine demotes ranked cold payloads whenever host-pool
	// occupancy exceeds TierWatermark×HostCapacity, so swap-outs find
	// headroom already freed instead of demoting inline on the hot path.
	// Zero disables the demoter; a non-zero value requires a Tier.
	TierWatermark float64
	// TierWatermarkInterval is the demoter's wake period. Zero selects
	// DefaultTierWatermarkInterval.
	TierWatermarkInterval time.Duration
	// Sched optionally couples the executor to an admission scheduler's
	// shed signal: at each run boundary of an operation whose context
	// carries a speculative sched.Hint, the executor asks ShouldShed and
	// yields the remaining work with ErrShed when a critical waiter is
	// starved. Nil never sheds. This is a signal, not a slot pool — the
	// executor never acquires scheduler slots.
	Sched ShedSignal
	// Observer optionally receives deep instrumentation: per-codec encode/
	// decode timings and byte volumes, wall-clock swap spans, and fallback/
	// retry events. When it carries a metrics registry, that registry also
	// becomes the backing store the Stats view reads from. A nil Observer
	// is valid and costs ~zero on the hot path (one pointer check; no
	// timing calls, no allocations).
	Observer *metrics.Observer
}

// Executor moves real tensors between a device pool and a host pool.
type Executor struct {
	cfg    Config
	device *devmem.Pool
	host   *devmem.Pool
	cache  *devmem.Cache
	arena  *arena
	hooks  *compress.Hooks

	// reg backs the Stats view: the Observer's registry when one is
	// configured, otherwise a private registry. ins holds the pre-resolved
	// cells so counting never allocates; obs gates the deep
	// (timing/span/event) instrumentation; epoch anchors span wall clocks.
	reg   *metrics.Registry
	ins   instruments
	obs   *metrics.Observer
	epoch time.Time

	// gate is the async pipeline's bounded in-flight window (async.go);
	// tierGate is the separate, smaller window tier demotion/promotion
	// I/O runs under (tier.go). tier is the optional disk spill tier;
	// sched is the optional admission scheduler's shed signal. The
	// watermark channels drive the background demoter's lifecycle
	// (watermarkOnce makes Close idempotent against it).
	gate          asyncGate
	tier          *tier.Store
	tierGate      asyncGate
	sched         ShedSignal
	watermarkStop chan struct{}
	watermarkDone chan struct{}
	watermarkOnce sync.Once

	// launch is the active codec partitioning geometry, packed grid<<32 |
	// block in an atomic so the tuner can retarget it while swaps are in
	// flight; each operation reads it exactly once. It is device-global:
	// launch geometry models how the kernel occupies the GPU, which is
	// shared hardware, unlike the per-tenant codec choice.
	launch atomic.Uint64

	// mu guards the handle registry and the closed flag; counters are
	// atomic registry cells. Per-handle state is guarded by each handle's
	// own lock (see Handle).
	mu     sync.Mutex
	closed bool
	nextID int
	live   map[int]*Handle
	pools  map[int]*BlockPool
}

// Stats is a point-in-time view over the executor's metrics registry — the
// former ad-hoc counter struct, kept readable for back-compat. Mutate
// nothing here; the registry (see Registry) is the source of truth.
type Stats struct {
	SwapOuts, SwapIns int
	// RawBytes is the uncompressed volume swapped out; MovedBytes the
	// volume that actually crossed the (simulated) link.
	RawBytes, MovedBytes int64
	// CompressedTensors counts swap-outs that used a codec.
	CompressedTensors int
	Verified          int
	// EncodeFallbacks counts swap-outs that degraded to the raw path after
	// a codec encode failure; AllocFallbacks counts those that degraded
	// after the compressed blob failed host-pool allocation.
	EncodeFallbacks, AllocFallbacks int
	// DecodeRetries counts swap-ins whose first decode or verification
	// attempt failed and was retried from the retained host blob;
	// DecodeRecoveries counts the retries that restored the tensor.
	DecodeRetries, DecodeRecoveries int
	// BusyRejections counts operations refused with ErrBusy because
	// another swap held the handle.
	BusyRejections int
	// TierDemotions counts payloads demoted host→disk; TierPromotions
	// counts restores that moved a payload back out of the disk tier.
	TierDemotions, TierPromotions int
}

// Ratio returns moved/raw bytes over the executor's lifetime.
func (s Stats) Ratio() float64 {
	if s.RawBytes == 0 {
		return 1
	}
	return float64(s.MovedBytes) / float64(s.RawBytes)
}

// Fallbacks returns the total number of swap-outs that degraded to raw.
func (s Stats) Fallbacks() int { return s.EncodeFallbacks + s.AllocFallbacks }

// State of a handle's backing storage.
type State int

// Handle states. Resident/Swapped/Freed are the stable states;
// SwappingOut/SwappingIn are transitional claims held by exactly one
// in-flight operation (DESIGN.md §10 documents the legal transitions).
const (
	Resident    State = iota // data lives in the device pool
	Swapped                  // data lives (possibly compressed) in the host pool
	Freed                    // released
	SwappingOut              // a swap-out owns the handle
	SwappingIn               // a swap-in owns the handle
)

// String names the state for errors and logs.
func (s State) String() string {
	switch s {
	case Resident:
		return "resident"
	case Swapped:
		return "swapped"
	case Freed:
		return "freed"
	case SwappingOut:
		return "swapping-out"
	case SwappingIn:
		return "swapping-in"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Handle identifies one registered tensor.
type Handle struct {
	id   int
	name string

	// mu guards state and pending. The storage fields below are owned
	// exclusively by whichever operation holds the transitional state, so
	// they need no lock of their own: claim and commit both pass through
	// mu, which orders one operation's writes before the next one's reads.
	mu      sync.Mutex
	state   State
	pending *Ticket // the async ticket driving a transitional state, if any

	data     []float32 // resident payload
	devBlock *devmem.Block

	blob       []byte // swapped payload (codec blob or raw bytes)
	hostBlock  *devmem.Block
	alg        compress.Algorithm
	compressed bool
	elems      int
	checksum   uint64

	// tiered marks a Swapped handle whose payload lives in the disk tier
	// instead of the host pool (blob and hostBlock are nil); swappedAt is
	// the executor-epoch time of the last swap-out commit, feeding the
	// re-access prediction that ranks demotion victims.
	tiered    bool
	swappedAt float64

	// scratch retains the tensor's float32 backing across a swap-out so the
	// swap-in decodes straight into it instead of allocating a fresh slice.
	// It models the device allocation the real executor would reuse; its
	// contents are meaningless while the handle is Swapped.
	scratch []float32
}

// Name returns the tensor's registration name.
func (h *Handle) Name() string { return h.name }

// State returns the handle's current storage state.
func (h *Handle) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Compressed reports whether the swapped payload is a codec blob — false
// for raw swaps, including compressed swap-outs that fell back to raw.
func (h *Handle) Compressed() bool { return h.compressed }

// Bytes returns the uncompressed tensor size.
func (h *Handle) Bytes() int64 { return int64(h.elems) * tensor.BytesPerElement }

// Data returns the resident payload, or ErrNotResident.
func (h *Handle) Data() ([]float32, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Resident {
		return nil, fmt.Errorf("%w: %s", ErrNotResident, h.name)
	}
	return h.data, nil
}

// claim moves the handle from the stable state `from` into the
// transitional state `to`, recording the async ticket (nil for the
// synchronous API) that now owns it. A handle in any other state refuses
// the claim with an error naming why: ErrBusy for transitional states,
// ErrFreed after Free, or a plain misuse error for the wrong stable state.
func (h *Handle) claim(from, to State, t *Ticket) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == from {
		h.state = to
		h.pending = t
		return nil
	}
	switch h.state {
	case Freed:
		return fmt.Errorf("%w: %s", ErrFreed, h.name)
	case SwappingOut, SwappingIn:
		return fmt.Errorf("%w: %s (%s in flight)", ErrBusy, h.name, h.state)
	case Swapped:
		// Wrapped so callers (the serving layer especially) can classify
		// state-machine misuse without parsing message text.
		return fmt.Errorf("%w: %s already swapped out", ErrNotResident, h.name)
	case Resident:
		return fmt.Errorf("%w: %s already resident", ErrNotSwapped, h.name)
	}
	return fmt.Errorf("executor: %s in unexpected state %s", h.name, h.state)
}

// commit releases a claim by installing the final (or, on failure, the
// rolled-back original) stable state. Only the operation holding the
// transitional state may call it.
func (h *Handle) commit(to State) {
	h.mu.Lock()
	h.state = to
	h.pending = nil
	h.mu.Unlock()
}

// New creates an executor with the given pools.
func New(cfg Config) (*Executor, error) {
	if cfg.DeviceCapacity <= 0 || cfg.HostCapacity <= 0 {
		return nil, fmt.Errorf("executor: capacities must be positive")
	}
	if cfg.MaxInFlight < 0 || cfg.TierMaxInFlight < 0 {
		return nil, fmt.Errorf("executor: MaxInFlight must be non-negative")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.Launch.Grid == 0 {
		cfg.Launch = compress.Launch{Grid: 128, Block: 64}
	}
	if err := cfg.Launch.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Observer.Reg()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e := &Executor{
		cfg:    cfg,
		device: devmem.NewPool("device", cfg.DeviceCapacity),
		host:   devmem.NewPool("pinned-host", cfg.HostCapacity),
		cache:  devmem.NewCache(),
		arena:  newArena(reg),
		live:   map[int]*Handle{},
		pools:  map[int]*BlockPool{},
		reg:    reg,
		ins:    newInstruments(reg),
		obs:    cfg.Observer,
		epoch:  time.Now(),
	}
	e.gate.init(cfg.MaxInFlight, e.ins.asyncInflight, e.ins.asyncPeak, e.ins.asyncDepth)
	if cfg.TierMaxInFlight == 0 {
		cfg.TierMaxInFlight = DefaultTierMaxInFlight
	}
	e.tier = cfg.Tier
	e.tierGate.init(cfg.TierMaxInFlight, e.ins.tierInflight, e.ins.tierPeak, e.ins.tierDepth)
	e.sched = cfg.Sched
	if cfg.TierWatermark != 0 {
		if cfg.TierWatermark < 0 || cfg.TierWatermark >= 1 {
			return nil, fmt.Errorf("executor: TierWatermark %v outside (0,1)", cfg.TierWatermark)
		}
		if cfg.Tier == nil {
			return nil, fmt.Errorf("executor: TierWatermark needs a Tier to demote into")
		}
		interval := cfg.TierWatermarkInterval
		if interval <= 0 {
			interval = DefaultTierWatermarkInterval
		}
		e.watermarkStop = make(chan struct{})
		e.watermarkDone = make(chan struct{})
		go e.watermarkLoop(interval)
	}
	e.launch.Store(packLaunch(cfg.Launch))
	if inj := cfg.Faults; inj != nil {
		e.device.SetAllocHook(func(int64) error { return inj.Fail(faultinject.SiteDeviceAlloc) })
		e.host.SetAllocHook(func(int64) error { return inj.Fail(faultinject.SiteHostAlloc) })
		e.hooks = &compress.Hooks{
			ChunkEncode: func(compress.Algorithm, int) error {
				inj.Sleep(faultinject.SiteEncode)
				return inj.Fail(faultinject.SiteEncode)
			},
			ChunkDecode: func(compress.Algorithm, int) error {
				inj.Sleep(faultinject.SiteDecode)
				return inj.Fail(faultinject.SiteDecode)
			},
		}
	}
	return e, nil
}

// Register places a tensor into device memory, taking ownership of its
// data slice. It fails with devmem.ErrOutOfMemory when the device pool is
// full — the caller must swap something out first, exactly the pressure
// that motivates swapping — and with ErrClosed after Close; the device
// reservation is released whenever registration cannot complete.
func (e *Executor) Register(name string, t *tensor.Tensor) (*Handle, error) {
	block, err := e.device.Alloc(int64(t.SizeBytes()))
	if err != nil {
		return nil, err
	}
	h := &Handle{
		name:     name,
		state:    Resident,
		data:     t.Data,
		devBlock: block,
		elems:    t.Len(),
		checksum: checksum(t.Data),
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = block.Free()
		return nil, fmt.Errorf("%w: register %s", ErrClosed, name)
	}
	e.nextID++
	h.id = e.nextID
	e.live[h.id] = h
	e.mu.Unlock()
	return h, nil
}

// SwapOut moves the tensor to the host pool. With compress true, the data
// is encoded with alg (partitioned by the configured launch) and only the
// compressed bytes consume host capacity and count as moved; otherwise the
// raw little-endian bytes move.
//
// A compressed swap-out never fails on the codec: if the encode errors, or
// the compressed blob cannot be allocated in the host pool, the tensor
// degrades to a raw swap-out (the cDMA-style raw path) and the fallback is
// counted in Stats. Only a raw-path allocation failure surfaces, leaving
// the tensor resident and intact. A handle already being swapped by
// another goroutine returns ErrBusy.
func (e *Executor) SwapOut(h *Handle, doCompress bool, alg compress.Algorithm) error {
	if err := e.claim(h, Resident, SwappingOut, nil); err != nil {
		return err
	}
	return e.swapOut(h, doCompress, alg)
}

// claim is Handle.claim plus the executor-level busy accounting.
func (e *Executor) claim(h *Handle, from, to State, t *Ticket) error {
	err := h.claim(from, to, t)
	if err != nil && errors.Is(err, ErrBusy) {
		e.ins.busyRejections.Inc()
	}
	return err
}

// swapOut is the swap-out body. The caller has claimed SwappingOut; the
// body owns the handle's storage until it commits Swapped (success) or
// rolls back to Resident (failure, tensor intact).
func (e *Executor) swapOut(h *Handle, doCompress bool, alg compress.Algorithm) error {
	inj := e.cfg.Faults
	timed := e.obs != nil // deep instrumentation only when observed
	var t0 float64
	if timed {
		t0 = e.sinceEpoch()
	}
	compressed := doCompress
	encodeFellBack, allocFellBack := false, false
	var blob []byte
	var encDur time.Duration
	if doCompress {
		var encStart time.Time
		if timed {
			encStart = time.Now()
		}
		// The encode output lands in an arena buffer sized by the codec's
		// worst-case bound, so the whole compressed path allocates nothing
		// once the arena is warm.
		b, err := e.arenaEncode(alg, h.data)
		if timed {
			encDur = time.Since(encStart)
		}
		if err != nil {
			// The raw path beside the compressing one: a codec failure
			// must not lose the tensor, it just forfeits the bandwidth
			// saving for this transfer.
			compressed = false
			encodeFellBack = true
		} else {
			blob = b
		}
	}
	if !compressed {
		blob = rawEncode(h.data, e.cache)
	}
	// The bytes that land in the host pool are the transferred copy; a
	// transfer-out fault corrupts the stored blob persistently. Ownership
	// stays explicit: the pristine encode output remains owned by this
	// operation until the swap resolves (recycling it at mutation time
	// would let a concurrent encode reuse a buffer an in-place mutation
	// could still alias), and the mutated copy — which MutateBlob
	// allocates outside the arena — is discarded under the same
	// transfer-copy convention as swap-in's transient copies.
	var pristine []byte
	pristineCompressed := false
	if mutated, ok := inj.MutateBlob(faultinject.SiteTransferOut, blob); ok {
		pristine, pristineCompressed = blob, compressed
		blob = mutated
	}
	// discard sends a non-shipping outbound copy home: transfer copies to
	// the arena, genuine blobs to their pool. settle recycles the retained
	// pristine original exactly once, when the operation's outcome no
	// longer depends on it.
	discard := func(b []byte, comp bool) {
		if pristine != nil {
			e.arena.put(b)
		} else {
			e.recycleBlob(b, comp)
		}
	}
	settle := func() {
		if pristine != nil {
			e.recycleBlob(pristine, pristineCompressed)
			pristine = nil
		}
	}
	hostBlock, err := e.host.Alloc(int64(len(blob)))
	if err != nil && e.freeHostSpace(int64(len(blob))) {
		// Host pressure with a spill tier attached: demote cold swapped
		// payloads to disk and retry before burning the raw fallback.
		hostBlock, err = e.host.Alloc(int64(len(blob)))
	}
	if err != nil && compressed {
		// Host-pool pressure on the compressed path: retry raw before
		// surfacing (HostCapacityFor budgets the pool for the all-raw
		// worst case, so the raw reservation is the accounted-for size).
		raw := rawEncode(h.data, e.cache)
		rawBlock, rerr := e.host.Alloc(int64(len(raw)))
		if rerr != nil && e.freeHostSpace(int64(len(raw))) {
			rawBlock, rerr = e.host.Alloc(int64(len(raw)))
		}
		if rerr != nil {
			e.cache.Put(raw)
			discard(blob, compressed) // neither copy ships; both go home
			settle()
			h.commit(Resident)
			return fmt.Errorf("executor: host pool: %w", err)
		}
		discard(blob, compressed) // the compressed blob never ships
		settle()
		compressed = false
		allocFellBack = true
		blob, hostBlock, err = raw, rawBlock, nil
	}
	if err != nil {
		discard(blob, compressed)
		settle()
		h.commit(Resident)
		return fmt.Errorf("executor: host pool: %w", err)
	}
	if err := h.devBlock.Free(); err != nil {
		_ = hostBlock.Free()
		discard(blob, compressed)
		settle()
		h.commit(Resident)
		return err
	}
	settle() // the stored blob is the shipped copy; the original goes home
	h.blob = blob
	h.hostBlock = hostBlock
	h.alg = alg
	h.compressed = compressed
	h.scratch = h.data // retained for the swap-in to decode into
	h.data = nil
	h.devBlock = nil
	h.tiered = false
	h.swappedAt = e.sinceEpoch()
	h.commit(Swapped)

	e.ins.swapOuts.Inc()
	e.ins.rawBytes.Add(float64(h.Bytes()))
	e.ins.movedBytes.Add(float64(len(blob)))
	if compressed {
		e.ins.compressed.Inc()
	}
	if encodeFellBack {
		e.ins.encodeFallbacks.Inc()
	}
	if allocFellBack {
		e.ins.allocFallbacks.Inc()
	}
	if timed {
		e.observeSwapOut(h.name, compressed, alg, len(blob), encDur, t0, e.sinceEpoch(), encodeFellBack, allocFellBack)
	}
	return nil
}

func packLaunch(l compress.Launch) uint64 {
	return uint64(l.Grid)<<32 | uint64(l.Block)
}

// Launch returns the active launch geometry.
func (e *Executor) Launch() compress.Launch {
	v := e.launch.Load()
	return compress.Launch{Grid: int(v >> 32), Block: int(v & 0xffffffff)}
}

// SetLaunch retargets the codec partitioning geometry for subsequent
// swaps; in-flight operations finish at the geometry they started with
// (each reads the launch once at entry). Decode partitioning comes from
// the blob's chunk directory, so a blob encoded at the old geometry
// decodes correctly after a retune.
func (e *Executor) SetLaunch(l compress.Launch) error {
	if err := l.Validate(); err != nil {
		return err
	}
	e.launch.Store(packLaunch(l))
	return nil
}

// arenaEncode runs the parallel encode into an arena buffer sized by the
// codec's worst-case bound, so the encode itself allocates nothing. On
// error the buffer goes straight back to the arena; on success the caller
// owns the returned blob and recycles it via recycleBlob.
func (e *Executor) arenaEncode(alg compress.Algorithm, data []float32) ([]byte, error) {
	launch := e.Launch() // one read: bound and encode must agree
	bound, err := compress.MaxParallelEncodedLen(alg, len(data), launch)
	if err != nil {
		return nil, err
	}
	buf := e.arena.get(bound)
	blob, err := compress.AppendParallelEncodeWith(buf, alg, data, launch, e.hooks)
	if err != nil {
		e.arena.put(buf)
		return nil, err
	}
	return blob, nil
}

// SwapIn restores the tensor to device memory, decompressing if needed and
// (when configured) verifying the payload against the registration
// checksum.
//
// The host blob is retained until the restore commits: if the first decode
// or verification attempt fails recoverably (data-level corruption,
// truncation, or an injected fault — not structural misuse), SwapIn retries
// once from the retained blob before surfacing the failure. A surfaced
// decode failure carries codec and chunk context (compress.ChunkError);
// wrong data is never returned silently. Every failure is atomic: the
// handle stays cleanly Swapped with its retained blob intact, so the call
// is safe to retry. A handle already being swapped by another goroutine
// returns ErrBusy.
func (e *Executor) SwapIn(h *Handle) error {
	if err := e.claim(h, Swapped, SwappingIn, nil); err != nil {
		return err
	}
	return e.swapIn(h)
}

// swapIn is the swap-in body. The caller has claimed SwappingIn; the body
// owns the handle's storage until it commits Resident (success) or rolls
// back to Swapped (failure, retained blob intact, retry-safe).
func (e *Executor) swapIn(h *Handle) error {
	devBlock, err := e.device.Alloc(h.Bytes())
	if err != nil {
		h.commit(Swapped)
		return fmt.Errorf("executor: device pool: %w", err)
	}
	inj := e.cfg.Faults
	timed := e.obs != nil
	var t0 float64
	var decDur time.Duration
	if timed {
		t0 = e.sinceEpoch()
	}

	// A tiered handle's payload lives on disk: promote it by reading it
	// back (under the tier I/O window) before decoding. The in-memory
	// copy plays the retained blob's role in the retry semantics below;
	// any failure from here rolls back to Swapped with the handle still
	// tiered and the committed tier entry intact — retry-safe.
	blob := h.blob
	fromTier := false
	if h.tiered {
		b, terr := e.promoteRead(h)
		if terr != nil {
			_ = devBlock.Free()
			h.commit(Swapped)
			return fmt.Errorf("executor: restore %s: %w", h.name, terr)
		}
		blob = b
		fromTier = true
	}

	// The decode lands in the float32 backing retained at swap-out — the
	// tensor's own storage, so a warm round trip allocates no new slice.
	// The defensive make only fires for handles predating the retention
	// (there are none in practice).
	dst := h.scratch
	if cap(dst) < h.elems {
		dst = make([]float32, h.elems)
	} else {
		dst = dst[:h.elems]
	}
	launch := e.Launch() // one read; chunk bounds come from the blob itself
	decode := func(blob []byte) error {
		if h.compressed {
			return compress.ParallelDecodeIntoWith(dst, blob, launch, e.hooks)
		}
		if len(blob) != h.elems*4 {
			return fmt.Errorf("%w: raw blob is %d bytes, want %d",
				compress.ErrTruncated, len(blob), h.elems*4)
		}
		rawDecodeInto(dst, blob)
		return nil
	}
	check := func() error {
		if e.cfg.Verify && checksum(dst) != h.checksum {
			return fmt.Errorf("%w: %s", ErrVerification, h.name)
		}
		return nil
	}

	// The first attempt decodes the transferred copy, which a transfer-in
	// fault may have perturbed in flight.
	transfer, transient := inj.MutateBlob(faultinject.SiteTransferIn, blob)
	var decStart time.Time
	if timed {
		decStart = time.Now()
	}
	derr := decode(transfer)
	if timed {
		decDur = time.Since(decStart)
	}
	if derr == nil {
		derr = check()
	}
	retried, recovered := false, false
	if derr != nil && retryable(derr, transient) {
		// Retry from the retained blob, overwriting whatever the failed
		// attempt left in dst.
		retried = true
		if rerr := decode(blob); rerr != nil {
			derr = rerr
		} else if rerr = check(); rerr != nil {
			derr = rerr
		} else {
			derr, recovered = nil, true
		}
	}
	if transient {
		// The in-flight copy is dead after the decode attempts, pass or
		// fail; only h.blob survives a failed restore.
		e.arena.put(transfer)
	}
	if derr != nil {
		_ = devBlock.Free()
		// Keep the (possibly grown) decode buffer on the handle so a retry
		// reuses it; its contents are meaningless while Swapped.
		h.scratch = dst
		h.commit(Swapped)
		if retried {
			e.ins.decodeRetries.Inc()
		}
		if timed {
			e.observeSwapIn(h.name, h.compressed, h.alg, decDur, t0, e.sinceEpoch(), retried, false)
		}
		return fmt.Errorf("executor: restore %s: %w", h.name, derr)
	}
	if h.hostBlock != nil {
		if err := h.hostBlock.Free(); err != nil {
			// Atomic failure: the device reservation is released, the decode
			// buffer is retained, and the handle rolls back cleanly to Swapped
			// with its blob and host block untouched — retry-safe.
			_ = devBlock.Free()
			h.scratch = dst
			h.commit(Swapped)
			return fmt.Errorf("executor: restore %s: %w", h.name, err)
		}
	}
	// The blob leaves its store only after the restore is committed —
	// recycling (or deleting from the tier) earlier would destroy the
	// bytes a failed swap-in still needs for its retry.
	if fromTier {
		_, _ = e.tier.Delete(h.tierKey())
		h.tiered = false
		e.ins.tierPromotions.Inc()
		e.ins.tierOccupancy.Set(float64(e.tier.Used()))
	} else {
		e.recycleBlob(h.blob, h.compressed)
	}
	h.data = dst
	h.scratch = nil
	h.devBlock = devBlock
	h.blob = nil
	h.hostBlock = nil
	h.commit(Resident)
	e.ins.swapIns.Inc()
	if e.cfg.Verify {
		e.ins.verified.Inc()
	}
	if retried {
		e.ins.decodeRetries.Inc()
	}
	if recovered {
		e.ins.decodeRecoveries.Inc()
	}
	if timed {
		e.observeSwapIn(h.name, h.compressed, h.alg, decDur, t0, e.sinceEpoch(), retried, recovered)
	}
	return nil
}

// retryable reports whether a failed first restore attempt is worth a
// second decode from the retained host blob: always when the transfer copy
// was perturbed in flight, and for data-level (compress.Recoverable),
// injected, or checksum failures generally — never for structural misuse a
// retry cannot fix.
func retryable(err error, transient bool) bool {
	if transient {
		return true
	}
	if errors.Is(err, faultinject.ErrInjected) || errors.Is(err, ErrVerification) {
		return true
	}
	return compress.Recoverable(err)
}

// recycleBlob returns a swapped payload to its owner once nothing holds a
// view into it: compressed blobs (and fault-injected transfer copies) to
// the arena, raw buffers to the pinned-buffer cache that models
// cudaMallocHost reuse.
func (e *Executor) recycleBlob(blob []byte, compressed bool) {
	if compressed {
		e.arena.put(blob)
	} else {
		e.cache.Put(blob)
	}
}

// Free releases the tensor from whichever pool holds it. A handle with a
// swap in flight returns ErrBusy — wait for the operation, then Free.
func (e *Executor) Free(h *Handle) error {
	h.mu.Lock()
	prev := h.state
	switch prev {
	case SwappingOut, SwappingIn:
		h.mu.Unlock()
		e.ins.busyRejections.Inc()
		return fmt.Errorf("%w: %s (%s in flight)", ErrBusy, h.name, prev)
	case Freed:
		h.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrFreed, h.name)
	}
	// Claim the handle directly into Freed; storage below is released
	// outside the lock under the same exclusive-ownership rule as swaps.
	h.state = Freed
	h.mu.Unlock()
	switch prev {
	case Resident:
		if err := h.devBlock.Free(); err != nil {
			h.commit(prev)
			return err
		}
	case Swapped:
		if h.tiered {
			_, _ = e.tier.Delete(h.tierKey())
			e.ins.tierOccupancy.Set(float64(e.tier.Used()))
			h.tiered = false
			break
		}
		if err := h.hostBlock.Free(); err != nil {
			h.commit(prev)
			return err
		}
		e.recycleBlob(h.blob, h.compressed)
	}
	h.data = nil
	h.scratch = nil
	h.blob = nil
	h.devBlock = nil
	h.hostBlock = nil
	e.mu.Lock()
	delete(e.live, h.id)
	e.mu.Unlock()
	return nil
}

// Stats returns a snapshot of executor activity, read from the backing
// metrics registry. Each field is read atomically; a snapshot taken while
// swaps are in flight is internally consistent per counter, like the old
// struct under its mutex.
func (e *Executor) Stats() Stats {
	return Stats{
		SwapOuts:          int(e.ins.swapOuts.Value()),
		SwapIns:           int(e.ins.swapIns.Value()),
		RawBytes:          int64(e.ins.rawBytes.Value()),
		MovedBytes:        int64(e.ins.movedBytes.Value()),
		CompressedTensors: int(e.ins.compressed.Value()),
		Verified:          int(e.ins.verified.Value()),
		EncodeFallbacks:   int(e.ins.encodeFallbacks.Value()),
		AllocFallbacks:    int(e.ins.allocFallbacks.Value()),
		DecodeRetries:     int(e.ins.decodeRetries.Value()),
		DecodeRecoveries:  int(e.ins.decodeRecoveries.Value()),
		BusyRejections:    int(e.ins.busyRejections.Value()),
		TierDemotions:     int(e.ins.tierDemotions.Value()),
		TierPromotions:    int(e.ins.tierPromotions.Value()),
	}
}

// Registry exposes the metrics registry backing Stats: the configured
// Observer's registry when one was supplied, otherwise the executor's
// private one. Sinks can snapshot it at any time.
func (e *Executor) Registry() *metrics.Registry { return e.reg }

// DeviceStats and HostStats expose pool accounting.
func (e *Executor) DeviceStats() devmem.Stats { return e.device.Stats() }

// HostStats exposes the pinned pool accounting.
func (e *Executor) HostStats() devmem.Stats { return e.host.Stats() }

// CacheStats exposes the buffer-cache accounting.
func (e *Executor) CacheStats() devmem.CacheStats { return e.cache.Stats() }

// FaultStats exposes the injector's fired-fault counts (zero when no
// injector is configured).
func (e *Executor) FaultStats() faultinject.Stats { return e.cfg.Faults.Stats() }

// Live returns the number of non-freed handles and block pools.
func (e *Executor) Live() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.live) + len(e.pools)
}

// checksum is FNV-1a over the float bit patterns.
func checksum(data []float32) uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range data {
		bits := uint64(floatBits(v))
		for i := 0; i < 4; i++ {
			h ^= (bits >> (8 * uint(i))) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}
