package cswap_test

import (
	"math"
	"testing"

	"cswap"
)

func TestPublicCodecRoundTrip(t *testing.T) {
	gen := cswap.NewTensorGenerator(1)
	tn := gen.Uniform(10000, 0.6)
	for _, a := range cswap.Algorithms() {
		c, err := cswap.NewCodec(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(c.Encode(tn.Data))
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(tn.Data[i]) {
				t.Fatalf("%s mismatch at %d", a, i)
			}
		}
	}
}

func TestPublicParallelLaunch(t *testing.T) {
	gen := cswap.NewTensorGenerator(2)
	tn := gen.Uniform(50000, 0.5)
	launch := cswap.Launch{Grid: 199, Block: 64}
	blob, err := cswap.ParallelEncode(cswap.ZVC, tn.Data, launch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cswap.ParallelDecode(blob, launch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tn.Len() {
		t.Fatal("length mismatch")
	}
	if r := float64(len(blob)) / float64(tn.SizeBytes()); r > 0.6 {
		t.Fatalf("ZVC ratio %v at 50%% sparsity", r)
	}
}

func TestPublicDeviceCatalog(t *testing.T) {
	if cswap.V100().Name != "V100" || cswap.RTX2080Ti().Name != "2080Ti" {
		t.Fatal("device names wrong")
	}
	if _, err := cswap.DeviceByName("V100"); err != nil {
		t.Fatal(err)
	}
	if len(cswap.ModelNames()) != 6 {
		t.Fatal("six models expected")
	}
}

func TestPublicModelAndBatch(t *testing.T) {
	b, err := cswap.BatchSize("VGG16", "V100", cswap.ImageNet)
	if err != nil || b != 128 {
		t.Fatalf("BatchSize = %d, %v", b, err)
	}
	m, err := cswap.BuildModel("VGG16", cswap.ImageNet, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SwapTensors()) == 0 {
		t.Fatal("no swap tensors")
	}
}

func TestPublicEndToEndFramework(t *testing.T) {
	m, err := cswap.BuildModel("SqueezeNet", cswap.ImageNet, 512)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: m, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := fw.SimulateIteration(49, cswap.NewSimOptions(cswap.WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r.IterationTime <= 0 || r.Throughput <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	// Compare against vDNN through the public API.
	np, err := fw.ProfileAt(49)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := cswap.Simulate(m, fw.Config.Device, np, cswap.VDNN{}.Plan(np, fw.Config.Device),
		cswap.NewSimOptions(cswap.WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r.IterationTime >= rv.IterationTime {
		t.Fatalf("CSWAP %v not faster than vDNN %v", r.IterationTime, rv.IterationTime)
	}
}

func TestPublicCostModel(t *testing.T) {
	d := cswap.Decide(cswap.CostParams{
		SizeBytes: 500 << 20, Sparsity: 0.8,
		BWd2h: 11.7e9, BWh2d: 10.6e9,
		HiddenF: 0.01, HiddenB: 0.01,
		TimeC: 0.012, TimeDC: 0.008,
	})
	if !d.Compress {
		t.Fatal("large sparse tensor should compress")
	}
}

func TestPublicBayesOpt(t *testing.T) {
	dev := cswap.V100()
	obj := func(l cswap.Launch) float64 {
		// A smooth valley at grid 100 suffices for the API test.
		g := float64(l.Grid)
		return (g-100)*(g-100)/1e4 + 1
	}
	res := (&cswap.BayesOpt{Seed: 3}).Search(obj)
	if res.Evaluations != 35 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = dev
}

func TestPublicEstimateRatio(t *testing.T) {
	if r := cswap.EstimateRatio(cswap.ZVC, 0.5); math.Abs(r-0.53125) > 1e-9 {
		t.Fatalf("ZVC ratio = %v", r)
	}
}

func TestPublicFunctionalExecutorPath(t *testing.T) {
	model, err := cswap.BuildModel("AlexNet", cswap.ImageNet, 64)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 4096
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := cswap.SparsityForModel(model, 50, 1)
	tensors := model.SwapTensors()
	plan := &cswap.Plan{Framework: "test"}
	for range tensors {
		plan.Tensors = append(plan.Tensors, cswap.TensorPlan{Compress: true, Alg: cswap.ZVC, TransferRatio: 0.5})
	}
	rep, err := cswap.RunFunctionalIteration(exec, model, plan, sp, 10, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio() >= 1 || rep.Compressed != len(tensors) {
		t.Fatalf("report %+v", rep)
	}
}

func TestPublicResumeFramework(t *testing.T) {
	model, err := cswap.BuildModel("AlexNet", cswap.ImageNet, 64)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := cswap.ResumeFramework(fw.DB, model, cswap.V100(), cswap.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Launch != fw.Launch {
		t.Fatal("resumed launch differs")
	}
	// Fresh empty DB has nothing to resume from.
	if _, err := cswap.ResumeFramework(cswap.NewDB(), model, cswap.V100(), cswap.Config{}); err == nil {
		t.Fatal("resume from empty DB accepted")
	}
}

func TestPublicMemoryAwareAndPeakBytes(t *testing.T) {
	model, err := cswap.BuildModel("AlexNet", cswap.ImageNet, 64)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	np, err := fw.ProfileAt(25)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tp := range np.Tensors {
		total += tp.Bytes
	}
	ma := cswap.MemoryAware{Inner: fw.Planner(), BudgetBytes: total * 2, Model: model}
	plan := ma.Plan(np, fw.Config.Device)
	if got := cswap.PlanPeakBytes(np, plan); got != total {
		t.Fatalf("all-resident peak %d, want %d", got, total)
	}
}

func TestPublicExtendedAlgorithms(t *testing.T) {
	ext := cswap.ExtendedAlgorithms()
	if len(ext) != 5 || ext[4] != cswap.Huffman {
		t.Fatalf("ExtendedAlgorithms = %v", ext)
	}
	c, err := cswap.NewCodec(cswap.Huffman)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(c.Encode([]float32{1, 0, 0, 2}))
	if err != nil || len(got) != 4 {
		t.Fatal("huffman facade round-trip failed")
	}
}

func TestPublicFaultInjectionSurface(t *testing.T) {
	model, err := cswap.BuildModel("AlexNet", cswap.ImageNet, 64)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 4096
	inj := cswap.NewFaultInjector(
		cswap.Fault{Site: cswap.FaultSiteEncode, Mode: cswap.FaultFail, After: 2, Every: 30},
		cswap.Fault{Site: cswap.FaultSiteTransferIn, Mode: cswap.FaultCorrupt, After: 1, Every: 4},
	)
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
		Verify:         true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := cswap.SparsityForModel(model, 50, 1)
	plan := &cswap.Plan{Framework: "test"}
	for range model.SwapTensors() {
		plan.Tensors = append(plan.Tensors, cswap.TensorPlan{Compress: true, Alg: cswap.ZVC, TransferRatio: 0.5})
	}
	rep, err := cswap.RunFunctionalIteration(exec, model, plan, sp, 10, scale, 1)
	if err != nil {
		t.Fatalf("iteration must survive injected faults: %v", err)
	}
	st := exec.Stats()
	if st.EncodeFallbacks == 0 || st.DecodeRecoveries == 0 {
		t.Fatalf("faults never fired: %+v", st)
	}
	if st.Verified != rep.Tensors {
		t.Fatalf("verified %d of %d", st.Verified, rep.Tensors)
	}
	if fs := exec.FaultStats(); fs.Total() == 0 {
		t.Fatalf("fault stats %+v", fs)
	}
	// The error taxonomy is visible at the surface.
	if !cswap.RecoverableError(cswap.ErrCorrupt) || cswap.RecoverableError(cswap.ErrAlgorithmMismatch) {
		t.Fatal("RecoverableError taxonomy wrong")
	}
}
