package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cswap/internal/wire"
)

// stub is a scripted cswapd: it answers each request from a queue of
// canned responses, recording what it saw.
type stub struct {
	t         *testing.T
	responses []stubResponse
	calls     atomic.Int32
	tenants   chan string
}

type stubResponse struct {
	status int
	code   string // X-CSwap-Error
	retry  string // Retry-After
	frame  *wire.Frame
}

func (s *stub) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(s.calls.Add(1)) - 1
		if s.tenants != nil {
			s.tenants <- r.Header.Get("X-CSwap-Tenant")
		}
		if n >= len(s.responses) {
			s.t.Errorf("unexpected request #%d to %s", n, r.URL.Path)
			w.WriteHeader(http.StatusTeapot)
			return
		}
		resp := s.responses[n]
		if resp.status != http.StatusOK {
			if resp.code != "" {
				w.Header().Set("X-CSwap-Error", resp.code)
			}
			if resp.retry != "" {
				w.Header().Set("Retry-After", resp.retry)
			}
			http.Error(w, "scripted failure", resp.status)
			return
		}
		b, err := wire.Encode(resp.frame)
		if err != nil {
			s.t.Fatal(err)
		}
		_, _ = w.Write(b)
	})
}

// newStubClient wires a scripted server to a client whose sleeps are
// captured instead of slept.
func newStubClient(t *testing.T, s *stub, opts ...Option) (*Client, *[]time.Duration) {
	t.Helper()
	s.t = t
	hs := httptest.NewServer(s.handler())
	t.Cleanup(hs.Close)
	var slept []time.Duration
	c := New(hs.URL, opts...)
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	s := &stub{responses: []stubResponse{
		{status: 429, code: "saturated", retry: "0"},
		{status: 429, code: "saturated", retry: "0"},
		{status: 200, frame: &wire.Frame{Type: wire.TypeAck, Name: "x"}},
	}}
	c, slept := newStubClient(t, s, WithRetry(5, 10*time.Millisecond))
	if err := c.SwapOut(context.Background(), "x", WithCodec(ZVC)); err != nil {
		t.Fatalf("swap-out through two 429s: %v", err)
	}
	if got := s.calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	// Backoff doubles: 10ms then 20ms (Retry-After "0" doesn't override).
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Errorf("backoff sleeps = %v, want %v", *slept, want)
	}
}

func TestRetryHonorsLongerRetryAfter(t *testing.T) {
	s := &stub{responses: []stubResponse{
		{status: 429, code: "saturated", retry: "2"},
		{status: 200, frame: &wire.Frame{Type: wire.TypeAck, Name: "x"}},
	}}
	c, slept := newStubClient(t, s, WithRetry(5, 10*time.Millisecond))
	if err := c.Free(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Errorf("sleeps = %v, want [2s] (server hint beats base backoff)", *slept)
	}
}

func TestRetryOn409Busy(t *testing.T) {
	s := &stub{responses: []stubResponse{
		{status: 409, code: "busy", retry: "0"},
		{status: 200, frame: &wire.Frame{Type: wire.TypeAck, Name: "x"}},
	}}
	c, _ := newStubClient(t, s, WithRetry(5, time.Millisecond))
	if err := c.Prefetch(context.Background(), "x"); err != nil {
		t.Fatalf("prefetch through a busy refusal: %v", err)
	}
	if got := s.calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestConflictNotRetried(t *testing.T) {
	// 409 with a non-contention code (exists, state) must not be retried:
	// the identical request cannot succeed.
	for _, tc := range []struct {
		code string
		want error
	}{
		{"exists", ErrExists},
		{"state", ErrState},
	} {
		s := &stub{responses: []stubResponse{{status: 409, code: tc.code}}}
		c, slept := newStubClient(t, s, WithRetry(5, time.Millisecond))
		err := c.Register(context.Background(), "x", []float32{1})
		if !errors.Is(err, tc.want) {
			t.Errorf("code %s: err = %v, want %v", tc.code, err, tc.want)
		}
		if s.calls.Load() != 1 || len(*slept) != 0 {
			t.Errorf("code %s: %d calls, sleeps %v — conflict was retried", tc.code, s.calls.Load(), *slept)
		}
	}
}

func TestRetriesExhausted(t *testing.T) {
	s := &stub{responses: []stubResponse{
		{status: 429, code: "saturated", retry: "0"},
		{status: 429, code: "saturated", retry: "0"},
		{status: 429, code: "saturated", retry: "0"},
	}}
	c, _ := newStubClient(t, s, WithRetry(2, time.Millisecond))
	err := c.SwapOut(context.Background(), "x", WithRaw())
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if !strings.Contains(err.Error(), "retries") {
		t.Errorf("exhausted-retry error %q should say how many retries ran", err)
	}
	if got := s.calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
}

func TestErrorCodeMapping(t *testing.T) {
	cases := []struct {
		status int
		code   string
		want   error
	}{
		{507, "quota", ErrQuota},
		{507, "oom", ErrOutOfMemory},
		{404, "not-found", ErrNotFound},
		{409, "exists", ErrExists},
		{409, "state", ErrState},
		{410, "state", ErrState},
		{503, "draining", ErrUnavailable},
		{500, "internal", ErrProtocol},
		{400, "bad-frame", ErrProtocol},
	}
	for _, tc := range cases {
		s := &stub{responses: []stubResponse{{status: tc.status, code: tc.code}}}
		c, _ := newStubClient(t, s, WithRetry(0, 0))
		err := c.SwapOut(context.Background(), "x", WithCodec(ZVC))
		if !errors.Is(err, tc.want) {
			t.Errorf("status %d code %s: err = %v, want %v", tc.status, tc.code, err, tc.want)
		}
	}
}

func TestTenantHeaderSent(t *testing.T) {
	s := &stub{
		responses: []stubResponse{{status: 200, frame: &wire.Frame{Type: wire.TypeAck, Name: "x"}}},
		tenants:   make(chan string, 1),
	}
	c, _ := newStubClient(t, s, WithTenant("trainer-b"))
	if err := c.Free(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	if got := <-s.tenants; got != "trainer-b" {
		t.Errorf("tenant header = %q, want trainer-b", got)
	}
}

func TestWrongResponseTypeIsProtocolError(t *testing.T) {
	// An ack where tensor data belongs is a protocol error, not a panic.
	s := &stub{responses: []stubResponse{
		{status: 200, frame: &wire.Frame{Type: wire.TypeAck, Name: "x"}},
	}}
	c, _ := newStubClient(t, s)
	if _, err := c.SwapIn(context.Background(), "x"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestContextCancelsRetryLoop(t *testing.T) {
	s := &stub{responses: []stubResponse{
		{status: 429, code: "saturated", retry: "0"},
		{status: 429, code: "saturated", retry: "0"},
	}}
	s.t = t
	hs := httptest.NewServer(s.handler())
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithCancel(context.Background())
	c := New(hs.URL, WithRetry(10, time.Millisecond))
	c.sleep = func(ctx context.Context, _ time.Duration) error {
		cancel() // the deadline lands while the client is backing off
		return ctx.Err()
	}
	if err := c.SwapOut(ctx, "x", WithCodec(ZVC)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	// RFC 9110 §10.2.3: Retry-After = delta-seconds | HTTP-date. The date
	// form is taken relative to the response's Date header so a skewed
	// client clock cannot stretch the hint.
	date := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name       string
		retryAfter string
		date       string
		want       time.Duration
	}{
		{"absent", "", "", 0},
		{"seconds", "3", "", 3 * time.Second},
		{"zero seconds", "0", "", 0},
		{"negative seconds", "-5", "", 0},
		{"http date", date.Add(30 * time.Second).Format(http.TimeFormat), date.Format(http.TimeFormat), 30 * time.Second},
		{"http date in the past", date.Add(-time.Minute).Format(http.TimeFormat), date.Format(http.TimeFormat), 0},
		{"rfc850 date", date.Add(10 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), date.Format(http.TimeFormat), 10 * time.Second},
		{"garbage", "soon", "", 0},
		{"garbage mixed", "12 parsecs", "", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tc.retryAfter != "" {
				resp.Header.Set("Retry-After", tc.retryAfter)
			}
			if tc.date != "" {
				resp.Header.Set("Date", tc.date)
			}
			if got := retryAfter(resp); got != tc.want {
				t.Fatalf("retryAfter(%q) = %v, want %v", tc.retryAfter, got, tc.want)
			}
		})
	}
	// Date-form without a Date header falls back to the local clock: a
	// far-future date must yield a positive hint.
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
	if got := retryAfter(resp); got <= 50*time.Minute || got > time.Hour {
		t.Fatalf("future-date hint = %v, want ≈1h", got)
	}
}
