package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"cswap/internal/placement"
	"cswap/internal/wire"
)

// fakeCluster is a scripted shard-map server: it serves whatever map it
// currently holds on /cluster, and on /v1/* refuses any hint that
// disagrees with that map's ring — the same contract the real router
// enforces — while recording every hint it saw.
type fakeCluster struct {
	t *testing.T

	mu    sync.Mutex
	m     placement.Map
	ring  *placement.Ring
	hints []string
	posts int
}

func newFakeCluster(t *testing.T, active ...int) *fakeCluster {
	f := &fakeCluster{t: t}
	f.setActive(1, active...)
	return f
}

// setActive installs a new topology at the given map version.
func (f *fakeCluster) setActive(version int, active ...int) {
	m := placement.Map{Version: version, Replicas: placement.DefaultReplicas}
	for _, id := range active {
		m.Shards = append(m.Shards, placement.Shard{ID: id, State: placement.StateActive})
	}
	f.mu.Lock()
	f.m, f.ring = m, m.Ring()
	f.mu.Unlock()
}

func (f *fakeCluster) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		m := f.m
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m)
	})
	mux.HandleFunc("POST /v1/", func(w http.ResponseWriter, r *http.Request) {
		frame, err := wire.Read(r.Body, wire.DefaultMaxPayload)
		if err != nil {
			f.t.Errorf("fake cluster: bad frame: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		tenant := r.Header.Get("X-CSwap-Tenant")
		if tenant == "" {
			tenant = "default"
		}
		hint := r.Header.Get(shardHeader)
		f.mu.Lock()
		f.hints = append(f.hints, hint)
		f.posts++
		owner, _ := f.ring.Owner(placement.Key(tenant, frame.Name))
		f.mu.Unlock()
		if hint != strconv.Itoa(owner) {
			w.Header().Set("X-CSwap-Error", "misrouted")
			http.Error(w, "stale hint", http.StatusMisdirectedRequest)
			return
		}
		b, err := wire.Encode(&wire.Frame{Type: wire.TypeAck, Name: frame.Name})
		if err != nil {
			f.t.Fatal(err)
		}
		_, _ = w.Write(b)
	})
	return mux
}

func (f *fakeCluster) seen() (hints []string, posts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.hints...), f.posts
}

// TestClusterClientSendsComputedHint verifies the client hints every
// request with the owner its own ring computes from the served map.
func TestClusterClientSendsComputedHint(t *testing.T) {
	f := newFakeCluster(t, 0, 1, 2)
	hs := httptest.NewServer(f.handler())
	t.Cleanup(hs.Close)
	cc := NewCluster(hs.URL, WithTenant("tn"), WithRetry(0, 0))
	ctx := context.Background()

	ring := placement.NewRing([]int{0, 1, 2}, 0)
	for _, name := range []string{"a", "b", "c", "layer7/act"} {
		if err := cc.Register(ctx, name, make([]float32, 16)); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		want, _ := ring.Owner(placement.Key("tn", name))
		hints, _ := f.seen()
		if got := hints[len(hints)-1]; got != strconv.Itoa(want) {
			t.Errorf("register %s hinted shard %s, ring owner is %d", name, got, want)
		}
	}
}

// TestClusterClientMisrouteRefreshRetry flips the topology behind the
// client's cached map and verifies recovery costs exactly one refused
// attempt plus one refresh — and that a cluster which keeps refusing
// fresh hints surfaces ErrMisrouted instead of looping.
func TestClusterClientMisrouteRefreshRetry(t *testing.T) {
	f := newFakeCluster(t, 0, 1, 2)
	hs := httptest.NewServer(f.handler())
	t.Cleanup(hs.Close)
	cc := NewCluster(hs.URL, WithRetry(0, 0))
	ctx := context.Background()
	if err := cc.Refresh(ctx); err != nil {
		t.Fatal(err)
	}

	// Find a name whose owner changes when shard 1 leaves, then shrink the
	// topology without telling the client.
	ring3 := placement.NewRing([]int{0, 1, 2}, 0)
	var name string
	for i := 0; ; i++ {
		n := "moved-" + strconv.Itoa(i)
		if owner, _ := ring3.Owner(placement.Key("default", n)); owner == 1 {
			name = n
			break
		}
	}
	f.setActive(2, 0, 2)

	if err := cc.Register(ctx, name, make([]float32, 16)); err != nil {
		t.Fatalf("register across hidden topology change: %v", err)
	}
	if _, posts := f.seen(); posts != 2 {
		t.Errorf("recovery took %d POSTs, want 2 (one refusal, one success)", posts)
	}
	if got := cc.Map().Version; got != 2 {
		t.Errorf("client map version = %d, want 2 after refresh", got)
	}

	// A cluster that refuses every hint is broken: the client must give up
	// with the typed sentinel after its bounded refresh cycles.
	f.setActive(3, 0) // served map says shard 0...
	if err := cc.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	f.ring = placement.NewRing([]int{2}, 0) // ...but routing disagrees forever
	f.mu.Unlock()
	if err := cc.Register(ctx, "anything", make([]float32, 16)); !errors.Is(err, ErrMisrouted) {
		t.Fatalf("endlessly-refusing cluster: %v, want ErrMisrouted", err)
	}
}
