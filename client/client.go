// Package client is the Go client for cswapd, the CSWAP swap service
// daemon: a thin, dependency-free (stdlib-only) wrapper that speaks the
// wire package's length-prefixed binary frames over HTTP with connection
// reuse, per-tenant namespacing, and retry-with-backoff on the service's
// bounded-refusal answers (409 busy, 429 saturated).
//
//	c := client.New("http://127.0.0.1:7077", client.WithTenant("trainer-a"))
//	if err := c.Register(ctx, "conv1/act", data); err != nil { ... }
//	if err := c.SwapOut(ctx, "conv1/act"); err != nil { ... }          // service picks the codec
//	if err := c.SwapOut(ctx, "conv1/act", client.WithCodec(client.ZVC)); err != nil { ... }
//	restored, err := c.SwapIn(ctx, "conv1/act")
//
// Against a sharded daemon (cswapd -shards N), NewCluster returns a
// cluster-aware client that discovers the shard map from /cluster, routes
// each key to its owning shard, and transparently refreshes its map when
// the topology changes (a shard drain).
//
// The service answers saturation and per-tensor contention with refusals
// rather than queueing; the client turns those into bounded retries so a
// well-behaved caller sees backpressure as latency, not errors. Every
// other failure surfaces as a typed sentinel (ErrQuota, ErrNotFound, ...)
// wrapped with the server's message.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cswap/internal/compress"
	"cswap/internal/wire"
)

// Algorithm re-exports the codec selector so client users need no other
// cswap import; the constants are identical to the root package's.
type Algorithm = compress.Algorithm

// The compression algorithms a swap-out may request. Auto delegates the
// choice to the service: the tenant's tuned codec when cswapd runs with
// -tune, else the best modeled ratio for the tensor's sparsity.
const (
	Auto = compress.Auto
	ZVC  = compress.ZVC
	RLE  = compress.RLE
	CSR  = compress.CSR
	LZ4  = compress.LZ4
	HUF  = compress.Huffman
)

// Lane selects the service-side admission lane for a swap request when
// the daemon runs its SLO scheduler (cswapd -sched). The values match the
// wire encoding.
type Lane uint8

const (
	// LaneCritical is for on-the-critical-path work (a demand swap-in the
	// next decode step blocks on): granted ahead of everything queued.
	LaneCritical Lane = 0
	// LaneNormal is the default for demand swap traffic.
	LaneNormal Lane = 1
	// LaneSpeculative marks prefetch-ahead work the service may queue
	// behind demand traffic and shed mid-flight under critical pressure.
	LaneSpeculative Lane = 2
)

// Typed client errors; each wraps the server's message text.
var (
	// ErrBusy survives the retry budget on 409: another request holds the
	// tensor. Back off and retry.
	ErrBusy = errors.New("cswap client: tensor busy")
	// ErrSaturated survives the retry budget on 429: the service's
	// admission window is full.
	ErrSaturated = errors.New("cswap client: service saturated")
	// ErrExpired reports a WithDeadline request whose deadline passed while
	// it was queued for admission. It is never retried: the same deadline
	// cannot fare better on a second trip through the queue.
	ErrExpired = errors.New("cswap client: deadline expired in admission queue")
	// ErrQuota reports the tenant's device-memory quota is exhausted.
	ErrQuota = errors.New("cswap client: tenant quota exceeded")
	// ErrOutOfMemory reports the shared device pool is exhausted.
	ErrOutOfMemory = errors.New("cswap client: service out of device memory")
	// ErrNotFound reports an operation on an unregistered tensor.
	ErrNotFound = errors.New("cswap client: unknown tensor")
	// ErrExists reports registering a name the tenant already holds.
	ErrExists = errors.New("cswap client: tensor already registered")
	// ErrState reports an operation illegal in the tensor's current state
	// (e.g. swapping out a tensor that is already swapped).
	ErrState = errors.New("cswap client: operation illegal in tensor state")
	// ErrUnavailable reports a draining or closed service.
	ErrUnavailable = errors.New("cswap client: service unavailable")
	// ErrProtocol reports a malformed frame or an unexpected response.
	ErrProtocol = errors.New("cswap client: protocol error")
	// ErrMisrouted reports that the cluster refused a stale routing hint:
	// the shard this client computed no longer owns the key. Refresh the
	// shard map and retry (the cluster client does this automatically).
	ErrMisrouted = errors.New("cswap client: request misrouted")
)

// Client talks to one cswapd instance. It is safe for concurrent use; all
// requests share one http.Client whose transport pools connections.
type Client struct {
	base       string
	tenant     string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	maxPayload uint32
	sleep      func(context.Context, time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithTenant namespaces every request under the given tenant session.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, test doubles). The default pools keep-alive connections.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the retry budget for busy/saturated refusals and the
// base backoff, which doubles per attempt (the server's Retry-After hint
// is honored when it is longer). WithRetry(0, 0) disables retries.
func WithRetry(maxRetries int, base time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.backoff = maxRetries, base }
}

// WithMaxPayload caps the response frames the client will decode.
func WithMaxPayload(n uint32) Option { return func(c *Client) { c.maxPayload = n } }

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:7077").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		tenant:     "",
		maxRetries: 8,
		backoff:    25 * time.Millisecond,
		hc: &http.Client{
			// MaxIdleConnsPerHost matters more than usual here: the client
			// talks to ONE host (or one router), so the per-host cap IS the
			// connection pool. The Go default of 2 would discard all but two
			// keep-alive connections under a concurrent decode-step batch
			// load, paying a TCP handshake per swap instead of reusing.
			Transport: &http.Transport{
				MaxIdleConns:        128,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		sleep: sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Register places a float32 tensor in the service's device pool under the
// client's tenant namespace. The data slice is not retained.
func (c *Client) Register(ctx context.Context, name string, data []float32) error {
	_, err := c.do(ctx, "/v1/register",
		&wire.Frame{Type: wire.TypeRegister, Name: name, Data: data}, wire.TypeAck)
	return err
}

// SwapOption configures one swap call (SwapOut, SwapIn, Prefetch, and
// their batch forms). The swap-out default — no options — is compressed
// with the Auto selector: the service picks the codec (the tenant's tuned
// verdict when the daemon runs with -tune, else the best modeled ratio
// for the tensor's sparsity).
type SwapOption func(*swapOpts)

type swapOpts struct {
	compress bool
	alg      Algorithm
	hasSched bool
	lane     Lane
	deadline time.Duration
}

// WithCodec compresses the swap-out with a specific algorithm, overriding
// the service-side Auto choice.
func WithCodec(alg Algorithm) SwapOption {
	return func(o *swapOpts) { o.compress, o.alg = true, alg }
}

// WithRaw swaps out uncompressed.
func WithRaw() SwapOption {
	return func(o *swapOpts) { o.compress, o.alg = false, ZVC }
}

// WithLane tags the request with an admission lane for the service's SLO
// scheduler. Against a daemon without -sched the hint is decoded and
// ignored; old daemons that predate the extension refuse the frame.
func WithLane(l Lane) SwapOption {
	return func(o *swapOpts) { o.hasSched, o.lane = true, l }
}

// WithDeadline bounds how long the request may wait in the admission
// queue, relative to its arrival at the service. A request whose deadline
// passes while queued answers ErrExpired instead of running late.
// Deadline without lane rides LaneNormal; combine with WithLane to set
// both.
func WithDeadline(d time.Duration) SwapOption {
	return func(o *swapOpts) {
		if !o.hasSched {
			o.hasSched, o.lane = true, LaneNormal
		}
		o.deadline = d
	}
}

// sched stamps the resolved lane/deadline hint onto an outgoing frame.
func (o *swapOpts) sched(f *wire.Frame) *wire.Frame {
	if o.hasSched {
		f.HasSched = true
		f.Lane = uint8(o.lane)
		if o.deadline > 0 {
			f.DeadlineMicros = uint64(o.deadline / time.Microsecond)
		}
	}
	return f
}

// resolveSwapOpts folds options over the swap-out defaults.
func resolveSwapOpts(opts []SwapOption) swapOpts {
	o := swapOpts{compress: true, alg: Auto}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// SwapOut moves the tensor to the service's host pool. With no options the
// payload is compressed and the service chooses the codec; WithCodec and
// WithRaw override.
func (c *Client) SwapOut(ctx context.Context, name string, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := c.do(ctx, "/v1/swap-out",
		o.sched(&wire.Frame{Type: wire.TypeSwapOut, Name: name, Compress: o.compress, Alg: o.alg}), wire.TypeAck)
	return err
}

// SwapOutAlg is the pre-options swap-out signature.
//
// Deprecated: use SwapOut with WithCodec or WithRaw.
func (c *Client) SwapOutAlg(ctx context.Context, name string, compress bool, alg Algorithm) error {
	if !compress {
		return c.SwapOut(ctx, name, WithRaw())
	}
	if alg == Auto {
		return c.SwapOut(ctx, name)
	}
	return c.SwapOut(ctx, name, WithCodec(alg))
}

// SwapIn restores the tensor to device residency and returns its data.
// WithLane/WithDeadline tag the request for the service's SLO scheduler
// (a decode-step-blocking restore wants LaneCritical).
func (c *Client) SwapIn(ctx context.Context, name string, opts ...SwapOption) ([]float32, error) {
	o := resolveSwapOpts(opts)
	f, err := c.do(ctx, "/v1/swap-in",
		o.sched(&wire.Frame{Type: wire.TypeSwapIn, Name: name}), wire.TypeTensorData)
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// Prefetch asks the service to make the tensor resident ahead of need;
// it is idempotent on already-resident tensors. Without options the
// service treats it as speculative work.
func (c *Client) Prefetch(ctx context.Context, name string, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := c.do(ctx, "/v1/prefetch",
		o.sched(&wire.Frame{Type: wire.TypePrefetch, Name: name}), wire.TypeAck)
	return err
}

// Free releases the tensor and returns its bytes to the tenant quota.
func (c *Client) Free(ctx context.Context, name string) error {
	_, err := c.do(ctx, "/v1/free",
		&wire.Frame{Type: wire.TypeFree, Name: name}, wire.TypeAck)
	return err
}

// Health probes /healthz; nil means the service is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: healthz status %d", ErrUnavailable, resp.StatusCode)
	}
	return nil
}

// Metrics scrapes /metrics and returns the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%w: metrics status %d", ErrUnavailable, resp.StatusCode)
	}
	return string(b), nil
}

// retryable reports whether a refusal is worth another attempt: the
// bounded-refusal answers (busy, saturated) and the drain window.
func retryable(status int) bool {
	return status == http.StatusConflict || status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable
}

// header is one extra request header (the cluster client's routing hint).
type header struct{ key, value string }

// do sends one framed request, retrying bounded refusals with doubling
// backoff (honoring a longer server Retry-After), and decodes a response
// frame of the wanted type.
func (c *Client) do(ctx context.Context, path string, f *wire.Frame, want wire.Type, extra ...header) (*wire.Frame, error) {
	body, err := wire.Encode(f)
	if err != nil {
		return nil, err
	}
	var last error
	for attempt := 0; ; attempt++ {
		resp, err := c.send(ctx, path, body, extra)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			defer resp.Body.Close()
			out, err := wire.Read(resp.Body, c.maxPayload)
			if err != nil {
				return nil, fmt.Errorf("%w: decoding %s response: %v", ErrProtocol, path, err)
			}
			if out.Type != want {
				return nil, fmt.Errorf("%w: %s answered %s frame, want %s", ErrProtocol, path, out.Type, want)
			}
			return out, nil
		}
		last = responseError(resp)
		hint := retryAfter(resp)
		drain(resp.Body)
		// 409 "exists"/"state" conflicts are not contention: retrying the
		// identical request cannot succeed.
		if !retryable(resp.StatusCode) ||
			(!errors.Is(last, ErrBusy) && !errors.Is(last, ErrSaturated) && !errors.Is(last, ErrUnavailable)) {
			return nil, last
		}
		if attempt >= c.maxRetries {
			return nil, fmt.Errorf("%w (after %d retries)", last, attempt)
		}
		// Double per attempt, capped: a generous retry budget must not turn
		// into minutes-long (or overflowing) sleeps.
		const maxBackoff = time.Second
		d := c.backoff
		for i := 0; i < attempt && d < maxBackoff; i++ {
			d *= 2
		}
		if d > maxBackoff {
			d = maxBackoff
		}
		if hint > d {
			d = hint
		}
		// Never sleep past the caller's own deadline: when the context
		// would expire mid-backoff, the refusal in hand is the answer — a
		// context.DeadlineExceeded after a pointless sleep would hide it.
		if dl, ok := ctx.Deadline(); ok && d >= time.Until(dl) {
			return nil, fmt.Errorf("%w (context deadline before next retry)", last)
		}
		if d > 0 {
			if err := c.sleep(ctx, d); err != nil {
				return nil, err
			}
		}
	}
}

// send issues one POST with the tenant header.
func (c *Client) send(ctx context.Context, path string, body []byte, extra []header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if c.tenant != "" {
		req.Header.Set("X-CSwap-Tenant", c.tenant)
	}
	for _, h := range extra {
		req.Header.Set(h.key, h.value)
	}
	return c.hc.Do(req)
}

// responseError maps a non-200 response onto the client's sentinel errors
// using the service's machine-readable code header.
func responseError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text := strings.TrimSpace(string(msg))
	code := resp.Header.Get("X-CSwap-Error")
	var sentinel error
	switch code {
	case "busy":
		sentinel = ErrBusy
	case "saturated":
		sentinel = ErrSaturated
	case "expired":
		sentinel = ErrExpired
	case "quota":
		sentinel = ErrQuota
	case "oom":
		sentinel = ErrOutOfMemory
	case "not-found":
		sentinel = ErrNotFound
	case "exists":
		sentinel = ErrExists
	case "state":
		sentinel = ErrState
	case "draining":
		sentinel = ErrUnavailable
	case "misrouted":
		sentinel = ErrMisrouted
	default:
		return fmt.Errorf("%w: status %d: %s", ErrProtocol, resp.StatusCode, text)
	}
	return fmt.Errorf("%w: %s", sentinel, text)
}

// retryAfter parses the Retry-After hint, zero if absent or garbage. RFC
// 9110 §10.2.3 allows both forms: delta-seconds and an HTTP-date (taken
// relative to the Date header when the server sent one, else local now —
// a past date means "retry immediately").
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	at, err := http.ParseTime(v)
	if err != nil {
		return 0
	}
	now := time.Now()
	if d, err := http.ParseTime(resp.Header.Get("Date")); err == nil {
		now = d
	}
	if hint := at.Sub(now); hint > 0 {
		return hint
	}
	return 0
}

// drain discards and closes a response body so the connection returns to
// the keep-alive pool.
func drain(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
