package client

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"cswap/internal/wire"
)

// TestDefaultTransportPoolsPerHost pins the transport sizing: the client
// talks to one host, so MaxIdleConnsPerHost is the effective pool size
// and must match the concurrency the batch API invites — Go's default of
// 2 would churn connections under any parallel swap load.
func TestDefaultTransportPoolsPerHost(t *testing.T) {
	c := New("http://127.0.0.1:0")
	tr, ok := c.hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default transport is %T, want *http.Transport", c.hc.Transport)
	}
	if tr.MaxIdleConnsPerHost < 128 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want >= 128", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < tr.MaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConns %d < MaxIdleConnsPerHost %d: per-host pool can never fill",
			tr.MaxIdleConns, tr.MaxIdleConnsPerHost)
	}
}

// TestConnectionReuseUnderConcurrency drives many concurrent workers
// through one client and counts TCP connections on the server side: the
// keep-alive pool must absorb the load with roughly one connection per
// worker, not one per request.
func TestConnectionReuseUnderConcurrency(t *testing.T) {
	ack, err := wire.Encode(&wire.Frame{Type: wire.TypeAck, Name: "kv"})
	if err != nil {
		t.Fatal(err)
	}
	var newConns atomic.Int32
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(ack)
	}))
	hs.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	hs.Start()
	defer hs.Close()

	c := New(hs.URL)
	const workers, rounds = 16, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := c.SwapOutBlocks(context.Background(), "kv", []int{w, w + 1}); err != nil {
					t.Errorf("worker %d round %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := workers * rounds
	if got := int(newConns.Load()); got > total/4 {
		t.Fatalf("%d requests opened %d connections; keep-alive pool is not reusing", total, got)
	}
}
