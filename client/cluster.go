package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"cswap/internal/placement"
	"cswap/internal/wire"
)

// shardHeader carries the client's routing hint; the cluster validates it
// against its own ring and answers 421 misrouted when the hint is stale.
// Mirrors the server's ShardHeader constant (the client package stays free
// of the server package's executor dependency tree).
const shardHeader = "X-CSwap-Shard"

// ClusterClient talks to a sharded cswapd. It discovers the shard map
// from the /cluster endpoint, routes every operation to the shard its
// consistent-hash ring says owns the (tenant, tensor) key, and sends the
// computed shard as a routing hint. When the cluster refuses the hint —
// the topology changed under the client, typically a shard drain — the
// client refreshes its map once and retries, so a rebalance costs one
// extra round trip instead of an error.
//
// A ClusterClient pointed at a plain single-shard cswapd works unchanged:
// the server publishes a one-shard map and every key routes to shard 0.
// It is safe for concurrent use.
type ClusterClient struct {
	c *Client

	mu   sync.Mutex
	m    placement.Map
	ring *placement.Ring
}

// NewCluster returns a cluster-aware client for the daemon at baseURL.
// Options are the same as New's; the shard map is fetched lazily on first
// use (or eagerly via Refresh).
func NewCluster(baseURL string, opts ...Option) *ClusterClient {
	return &ClusterClient{c: New(baseURL, opts...)}
}

// Refresh fetches the shard map from /cluster and rebuilds the routing
// ring.
func (cc *ClusterClient) Refresh(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cc.c.base+"/cluster", nil)
	if err != nil {
		return err
	}
	resp, err := cc.c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: cluster map status %d", ErrUnavailable, resp.StatusCode)
	}
	var m placement.Map
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("%w: decoding cluster map: %v", ErrProtocol, err)
	}
	cc.mu.Lock()
	cc.m, cc.ring = m, m.Ring()
	cc.mu.Unlock()
	return nil
}

// Map returns the cached shard map (zero value before first use).
func (cc *ClusterClient) Map() placement.Map {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.m
}

// routing returns the cached ring, fetching the map on first use.
func (cc *ClusterClient) routing(ctx context.Context) (*placement.Ring, error) {
	cc.mu.Lock()
	ring := cc.ring
	cc.mu.Unlock()
	if ring != nil {
		return ring, nil
	}
	if err := cc.Refresh(ctx); err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.ring, nil
}

// tenant is the effective tenant for placement keys: requests without a
// tenant land in the server's default namespace, and the placement key
// must agree with what the server computes.
func (cc *ClusterClient) tenant() string {
	if cc.c.tenant != "" {
		return cc.c.tenant
	}
	return "default"
}

// run routes one operation: compute the owner, send with the hint, and on
// a misrouted refusal refresh the map and re-route. Two refresh cycles
// bound the loop — topology changes mid-request are rare, and a cluster
// that keeps refusing fresh hints is broken, not busy.
func (cc *ClusterClient) run(ctx context.Context, name, path string, f *wire.Frame, want wire.Type) (*wire.Frame, error) {
	for attempt := 0; ; attempt++ {
		ring, err := cc.routing(ctx)
		if err != nil {
			return nil, err
		}
		owner, ok := ring.Owner(placement.Key(cc.tenant(), name))
		if !ok {
			return nil, fmt.Errorf("%w: cluster map has no active shards", ErrUnavailable)
		}
		out, err := cc.c.do(ctx, path, f, want, header{shardHeader, strconv.Itoa(owner)})
		if err == nil || attempt >= 2 || !errors.Is(err, ErrMisrouted) {
			return out, err
		}
		if rerr := cc.Refresh(ctx); rerr != nil {
			return nil, fmt.Errorf("refreshing cluster map after %v: %w", err, rerr)
		}
	}
}

// Register places a float32 tensor on the shard owning the key.
func (cc *ClusterClient) Register(ctx context.Context, name string, data []float32) error {
	_, err := cc.run(ctx, name, "/v1/register",
		&wire.Frame{Type: wire.TypeRegister, Name: name, Data: data}, wire.TypeAck)
	return err
}

// SwapOut moves the tensor to its shard's host pool; options as Client.SwapOut.
func (cc *ClusterClient) SwapOut(ctx context.Context, name string, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := cc.run(ctx, name, "/v1/swap-out",
		o.sched(&wire.Frame{Type: wire.TypeSwapOut, Name: name, Compress: o.compress, Alg: o.alg}), wire.TypeAck)
	return err
}

// SwapIn restores the tensor and returns its data.
func (cc *ClusterClient) SwapIn(ctx context.Context, name string, opts ...SwapOption) ([]float32, error) {
	o := resolveSwapOpts(opts)
	f, err := cc.run(ctx, name, "/v1/swap-in",
		o.sched(&wire.Frame{Type: wire.TypeSwapIn, Name: name}), wire.TypeTensorData)
	if err != nil {
		return nil, err
	}
	return f.Data, nil
}

// Prefetch asks the owning shard to make the tensor resident ahead of need.
func (cc *ClusterClient) Prefetch(ctx context.Context, name string, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := cc.run(ctx, name, "/v1/prefetch",
		o.sched(&wire.Frame{Type: wire.TypePrefetch, Name: name}), wire.TypeAck)
	return err
}

// Free releases the tensor on its owning shard.
func (cc *ClusterClient) Free(ctx context.Context, name string) error {
	_, err := cc.run(ctx, name, "/v1/free",
		&wire.Frame{Type: wire.TypeFree, Name: name}, wire.TypeAck)
	return err
}

// DrainShard asks the cluster to migrate every tensor off one shard and
// retire it (the admin rebalance entry point).
func (cc *ClusterClient) DrainShard(ctx context.Context, shard int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/admin/drain?shard=%d", cc.c.base, shard), nil)
	if err != nil {
		return err
	}
	resp, err := cc.c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	// The topology just changed by request; refresh eagerly rather than
	// paying a misrouted round trip on the next operation.
	return cc.Refresh(ctx)
}

// Health probes /healthz on the cluster router.
func (cc *ClusterClient) Health(ctx context.Context) error { return cc.c.Health(ctx) }

// Metrics scrapes the shared /metrics exposition (all shards' series).
func (cc *ClusterClient) Metrics(ctx context.Context) (string, error) { return cc.c.Metrics(ctx) }
