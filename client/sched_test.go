package client

// Tests for the client side of SLO scheduling: the lane/deadline swap
// options on the wire, the non-retryable "expired" refusal, and the
// backoff clamp against the caller's own context deadline.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cswap/internal/wire"
)

func TestSchedOptionsOnWire(t *testing.T) {
	// Buffered past the case count so a failed case can never wedge the
	// handler (and thereby the next case) on an undrained frame.
	frames := make(chan *wire.Frame, 8)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, err := wire.Read(r.Body, 0)
		if err != nil {
			t.Errorf("decoding request frame: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		frames <- f
		resp := &wire.Frame{Type: wire.TypeAck, Name: f.Name}
		if f.Type == wire.TypeSwapIn {
			resp = &wire.Frame{Type: wire.TypeTensorData, Name: f.Name, Data: []float32{1}}
		}
		b, _ := wire.Encode(resp)
		_, _ = w.Write(b)
	}))
	defer hs.Close()
	c := New(hs.URL, WithRetry(0, 0))

	cases := []struct {
		name    string
		call    func() error
		hasHint bool
		lane    uint8
		micros  uint64
	}{
		{"default swap-in carries no hint", func() error {
			_, err := c.SwapIn(context.Background(), "x")
			return err
		}, false, 0, 0},
		{"WithLane tags the lane", func() error {
			_, err := c.SwapIn(context.Background(), "x", WithLane(LaneCritical))
			return err
		}, true, 0, 0},
		{"WithDeadline alone rides LaneNormal", func() error {
			return c.Prefetch(context.Background(), "x", WithDeadline(250*time.Millisecond))
		}, true, 1, 250_000},
		{"WithLane and WithDeadline combine", func() error {
			return c.SwapOut(context.Background(), "x",
				WithLane(LaneSpeculative), WithDeadline(time.Millisecond))
		}, true, 2, 1000},
		{"batch prefetch carries the hint too", func() error {
			return c.PrefetchBlocks(context.Background(), "kv", []int{1, 2},
				WithLane(LaneSpeculative), WithDeadline(2*time.Millisecond))
		}, true, 2, 2000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); err != nil {
				t.Fatal(err)
			}
			f := <-frames
			if f.HasSched != tc.hasHint {
				t.Fatalf("HasSched = %v, want %v", f.HasSched, tc.hasHint)
			}
			if !tc.hasHint {
				return
			}
			if f.Lane != tc.lane || f.DeadlineMicros != tc.micros {
				t.Fatalf("hint = lane %d deadline %dus, want lane %d deadline %dus",
					f.Lane, f.DeadlineMicros, tc.lane, tc.micros)
			}
		})
	}
}

func TestExpiredIsNotRetried(t *testing.T) {
	s := &stub{responses: []stubResponse{
		{status: 429, code: "expired", retry: "0"},
	}}
	c, slept := newStubClient(t, s, WithRetry(5, time.Millisecond))
	_, err := c.SwapIn(context.Background(), "x", WithDeadline(time.Millisecond))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("expired refusal surfaced as %v, want ErrExpired", err)
	}
	if got := s.calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (expired must not retry)", got)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v before giving up on an expired deadline", *slept)
	}
}

func TestBackoffNeverSleepsPastContextDeadline(t *testing.T) {
	// Each case scripts a saturated refusal whose computed backoff (base
	// doubling vs Retry-After hint) lands on one side of the caller's
	// remaining context budget.
	cases := []struct {
		name       string
		remaining  time.Duration
		retryAfter string
		base       time.Duration
		wantSleeps int // sleeps recorded before the call returns
	}{
		{"hint past deadline aborts before sleeping", 50 * time.Millisecond, "2", time.Millisecond, 0},
		{"base backoff past deadline aborts", 5 * time.Millisecond, "0", 50 * time.Millisecond, 0},
		{"backoff inside the budget still sleeps", time.Hour, "0", time.Millisecond, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &stub{responses: []stubResponse{
				{status: 429, code: "saturated", retry: tc.retryAfter},
				{status: 200, frame: &wire.Frame{Type: wire.TypeAck, Name: "x"}},
			}}
			c, slept := newStubClient(t, s, WithRetry(5, tc.base))
			ctx, cancel := context.WithTimeout(context.Background(), tc.remaining)
			defer cancel()
			err := c.SwapOut(ctx, "x", WithCodec(ZVC))
			if len(*slept) != tc.wantSleeps {
				t.Fatalf("sleeps = %v, want %d of them", *slept, tc.wantSleeps)
			}
			if tc.wantSleeps == 0 {
				// The refusal in hand is the answer, not DeadlineExceeded.
				if !errors.Is(err, ErrSaturated) {
					t.Fatalf("clamped retry returned %v, want ErrSaturated", err)
				}
			} else if err != nil {
				t.Fatalf("in-budget retry failed: %v", err)
			}
		})
	}
}
