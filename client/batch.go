package client

// Batch block swapping: the client face of the service's paged block
// pools. RegisterPool reserves a named pool of fixed-size blocks once;
// the batch calls then move lists of block IDs per round trip — a decode
// step's working set costs one request, not one per block.
//
//	if err := c.RegisterPool(ctx, "kv", 4096, 1024); err != nil { ... }
//	if err := c.WriteBlocks(ctx, "kv", []int{0, 1, 2}, packed); err != nil { ... }
//	if err := c.SwapOutBlocks(ctx, "kv", []int{0, 1, 2}); err != nil { ... }
//	bd, err := c.SwapInBlocks(ctx, "kv", []int{0, 1, 2})

import (
	"context"
	"fmt"

	"cswap/internal/wire"
)

// BlockRun is one contiguous run of block IDs: Count blocks starting at
// Start.
type BlockRun struct {
	Start, Count int
}

// BlockData is a batch swap-in result: the pool's per-block element
// count, the (sorted, disjoint) runs covering the requested IDs, and
// their contents packed run by run.
type BlockData struct {
	BlockElems int
	Runs       []BlockRun
	Data       []float32
}

// Block returns one block's elements from the packed payload, or false
// when the ID is not covered by the result's runs. The returned slice
// aliases Data.
func (bd *BlockData) Block(id int) ([]float32, bool) {
	off := 0
	for _, r := range bd.Runs {
		if id >= r.Start && id < r.Start+r.Count {
			base := (off + id - r.Start) * bd.BlockElems
			return bd.Data[base : base+bd.BlockElems], true
		}
		off += r.Count
	}
	return nil, false
}

// runsOf converts a strictly-ascending unique ID list into the canonical
// run table the batch-data frame carries. Any other shape errors: packed
// payloads have no unambiguous layout for unsorted or duplicate IDs.
func runsOf(ids []int) ([]wire.BlockRun, error) {
	var runs []wire.BlockRun
	for i, id := range ids {
		if i > 0 && id <= ids[i-1] {
			return nil, fmt.Errorf("%w: block IDs must be strictly ascending (%d after %d)",
				ErrProtocol, id, ids[i-1])
		}
		if n := len(runs); n > 0 && id == runs[n-1].Start+runs[n-1].Count {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, wire.BlockRun{Start: id, Count: 1})
	}
	return runs, nil
}

// blockData converts a batch-data response frame.
func blockData(f *wire.Frame) *BlockData {
	bd := &BlockData{BlockElems: f.BlockElems, Data: f.Data}
	for _, r := range f.Runs {
		bd.Runs = append(bd.Runs, BlockRun{Start: r.Start, Count: r.Count})
	}
	return bd
}

// RegisterPool reserves a paged block pool: numBlocks fixed-size blocks
// of blockElems float32s under one name, charged against the tenant
// quota once, here.
func (c *Client) RegisterPool(ctx context.Context, pool string, blockElems, numBlocks int) error {
	_, err := c.do(ctx, "/v1/register-pool",
		&wire.Frame{Type: wire.TypeRegisterPool, Name: pool, BlockElems: blockElems, NumBlocks: numBlocks},
		wire.TypeAck)
	return err
}

// WriteBlocks stores packed block contents: data holds len(ids) blocks
// back to back in the order of the strictly-ascending ID list. Target
// blocks must be resident.
func (c *Client) WriteBlocks(ctx context.Context, pool string, ids []int, data []float32) error {
	runs, err := runsOf(ids)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	elems := len(data) / len(ids)
	_, err = c.do(ctx, "/v1/batch-write",
		&wire.Frame{Type: wire.TypeBatchData, Name: pool, BlockElems: elems, Runs: runs, Data: data},
		wire.TypeAck)
	return err
}

// SwapOutBlocks moves the listed blocks to the service's host pool as one
// batch: IDs may repeat and arrive in any order; the service coalesces
// contiguous runs. Options as SwapOut.
func (c *Client) SwapOutBlocks(ctx context.Context, pool string, ids []int, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := c.do(ctx, "/v1/batch-swap-out",
		o.sched(&wire.Frame{Type: wire.TypeBatchSwapOut, Name: pool, Compress: o.compress, Alg: o.alg, BlockIDs: ids}),
		wire.TypeAck)
	return err
}

// SwapInBlocks restores the listed blocks and returns their packed
// contents. Already-resident blocks are included in the result without a
// restore. WithLane/WithDeadline tag the batch for the SLO scheduler.
func (c *Client) SwapInBlocks(ctx context.Context, pool string, ids []int, opts ...SwapOption) (*BlockData, error) {
	o := resolveSwapOpts(opts)
	f, err := c.do(ctx, "/v1/batch-swap-in",
		o.sched(&wire.Frame{Type: wire.TypeBatchSwapIn, Name: pool, BlockIDs: ids}), wire.TypeBatchData)
	if err != nil {
		return nil, err
	}
	return blockData(f), nil
}

// PrefetchBlocks asks the service to restore the listed blocks ahead of
// need; already-resident blocks are no-ops. Without options the service
// treats the batch as speculative work.
func (c *Client) PrefetchBlocks(ctx context.Context, pool string, ids []int, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := c.do(ctx, "/v1/batch-prefetch",
		o.sched(&wire.Frame{Type: wire.TypeBatchPrefetch, Name: pool, BlockIDs: ids}), wire.TypeAck)
	return err
}

// RegisterPool reserves a paged block pool on the shard owning the pool
// name; batch operations on the pool route to the same shard.
func (cc *ClusterClient) RegisterPool(ctx context.Context, pool string, blockElems, numBlocks int) error {
	_, err := cc.run(ctx, pool, "/v1/register-pool",
		&wire.Frame{Type: wire.TypeRegisterPool, Name: pool, BlockElems: blockElems, NumBlocks: numBlocks},
		wire.TypeAck)
	return err
}

// WriteBlocks stores packed block contents on the pool's owning shard;
// semantics as Client.WriteBlocks.
func (cc *ClusterClient) WriteBlocks(ctx context.Context, pool string, ids []int, data []float32) error {
	runs, err := runsOf(ids)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	elems := len(data) / len(ids)
	_, err = cc.run(ctx, pool, "/v1/batch-write",
		&wire.Frame{Type: wire.TypeBatchData, Name: pool, BlockElems: elems, Runs: runs, Data: data},
		wire.TypeAck)
	return err
}

// SwapOutBlocks batch-swaps blocks out on the pool's owning shard.
func (cc *ClusterClient) SwapOutBlocks(ctx context.Context, pool string, ids []int, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := cc.run(ctx, pool, "/v1/batch-swap-out",
		o.sched(&wire.Frame{Type: wire.TypeBatchSwapOut, Name: pool, Compress: o.compress, Alg: o.alg, BlockIDs: ids}),
		wire.TypeAck)
	return err
}

// SwapInBlocks restores blocks on the pool's owning shard and returns
// their packed contents.
func (cc *ClusterClient) SwapInBlocks(ctx context.Context, pool string, ids []int, opts ...SwapOption) (*BlockData, error) {
	o := resolveSwapOpts(opts)
	f, err := cc.run(ctx, pool, "/v1/batch-swap-in",
		o.sched(&wire.Frame{Type: wire.TypeBatchSwapIn, Name: pool, BlockIDs: ids}), wire.TypeBatchData)
	if err != nil {
		return nil, err
	}
	return blockData(f), nil
}

// PrefetchBlocks prefetches blocks on the pool's owning shard.
func (cc *ClusterClient) PrefetchBlocks(ctx context.Context, pool string, ids []int, opts ...SwapOption) error {
	o := resolveSwapOpts(opts)
	_, err := cc.run(ctx, pool, "/v1/batch-prefetch",
		o.sched(&wire.Frame{Type: wire.TypeBatchPrefetch, Name: pool, BlockIDs: ids}), wire.TypeAck)
	return err
}
