# CSWAP build and evaluation targets.

GO ?= go

.PHONY: all build vet test race race-all cover bench bench-compress bench-diff report csv examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-check the swapping data path (the concurrent hot path) and the
# lock-free metrics registry.
race:
	$(GO) test -race ./internal/executor/... ./internal/compress/... ./internal/metrics/...

race-all:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure as benchmark metrics, captured as
# machine-readable test2json events in BENCH_metrics.json.
bench:
	$(GO) test -bench=. -benchmem -json -run='^$$' ./... > BENCH_metrics.json
	@grep -c '"Action":"output"' BENCH_metrics.json >/dev/null && echo "wrote BENCH_metrics.json"

# Codec hot-path benchmarks -> machine-readable BENCH_compress.json
# baseline (committed; cmd/cswap-benchdiff strips the -GOMAXPROCS suffix so
# the file diffs across machines).
bench-compress:
	$(GO) test -bench='BenchmarkCodec|BenchmarkParallelContainer|BenchmarkSwapHotPath' -benchmem -count=3 -run='^$$' \
		./internal/compress/ ./internal/executor/ \
		| $(GO) run ./cmd/cswap-benchdiff -write BENCH_compress.json

# Allocation-regression gate: rerun the codec benchmarks and fail on >10%
# ns/op or ANY allocs/op regression against the committed baseline.
bench-diff:
	$(GO) test -bench='BenchmarkCodec|BenchmarkParallelContainer|BenchmarkSwapHotPath' -benchmem -count=3 -run='^$$' \
		./internal/compress/ ./internal/executor/ \
		| $(GO) run ./cmd/cswap-benchdiff -baseline BENCH_compress.json

# Full evaluation -> REPORT.md (and CSV series under data/).
report:
	$(GO) run ./cmd/cswap-report -o REPORT.md

csv:
	$(GO) run ./cmd/cswap-report -o REPORT.md -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tune-compression
	$(GO) run ./examples/framework-comparison
	$(GO) run ./examples/real-swap
	$(GO) run ./examples/vgg16-imagenet

clean:
	rm -f test_output.txt bench_output.txt BENCH_metrics.json
	rm -rf data
