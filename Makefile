# CSWAP build and evaluation targets.

GO ?= go

.PHONY: all build vet test race race-all cover bench bench-compress bench-diff check report csv examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-check the swapping data path (the concurrent hot path, including
# the async pipeline's bounded-window tests) and the lock-free metrics
# registry. The watchdog turns a deadlocked drain/backpressure wait into a
# goroutine dump instead of a hung CI job.
race:
	$(GO) test -race -timeout 300s ./internal/executor/... ./internal/compress/... ./internal/metrics/...

race-all:
	$(GO) test -race -timeout 600s ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure as benchmark metrics, captured as
# machine-readable test2json events in BENCH_metrics.json.
bench:
	$(GO) test -bench=. -benchmem -json -run='^$$' ./... > BENCH_metrics.json
	@grep -c '"Action":"output"' BENCH_metrics.json >/dev/null && echo "wrote BENCH_metrics.json"

# Codec hot-path benchmarks -> machine-readable BENCH_compress.json
# baseline (committed; cmd/cswap-benchdiff strips the -GOMAXPROCS suffix so
# the file diffs across machines). Regenerate whenever internal/compress
# gains or loses code: the tight decode loops are sensitive to function
# placement (a new function can shift a hot loop onto an unlucky address
# for ~2x ns/op with identical machine code), so ns/op is only comparable
# between binaries with the same layout. allocs/op is layout-immune.
bench-compress:
	$(GO) test -bench='BenchmarkCodec|BenchmarkParallelContainer|BenchmarkSwapHotPath' -benchmem -count=3 -run='^$$' \
		./internal/compress/ ./internal/executor/ \
		| $(GO) run ./cmd/cswap-benchdiff -write BENCH_compress.json

# Allocation-regression gate: rerun the codec benchmarks and fail on >10%
# ns/op or ANY allocs/op regression against the committed baseline.
bench-diff:
	$(GO) test -bench='BenchmarkCodec|BenchmarkParallelContainer|BenchmarkSwapHotPath' -benchmem -count=3 -run='^$$' \
		./internal/compress/ ./internal/executor/ \
		| $(GO) run ./cmd/cswap-benchdiff -baseline BENCH_compress.json

# Umbrella gate: everything a change must pass before it lands — build,
# vet+test, the race detector over the swap path, and the allocation-
# regression gate against the committed benchmark baseline.
check: build test race bench-diff

# Full evaluation -> REPORT.md (and CSV series under data/).
report:
	$(GO) run ./cmd/cswap-report -o REPORT.md

csv:
	$(GO) run ./cmd/cswap-report -o REPORT.md -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tune-compression
	$(GO) run ./examples/framework-comparison
	$(GO) run ./examples/real-swap
	$(GO) run ./examples/vgg16-imagenet

clean:
	rm -f test_output.txt bench_output.txt BENCH_metrics.json
	rm -rf data
