# CSWAP build and evaluation targets.

GO ?= go

.PHONY: all build vet test race race-all cover bench bench-compress bench-diff check serve-smoke tune-smoke cluster-smoke kv-smoke tier-smoke slo-smoke report csv examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-check the swapping data path (the concurrent hot path, including
# the async pipeline's bounded-window tests), the lock-free metrics
# registry, and the serving layer (frame codec, service, client — the e2e
# ladder drives concurrent HTTP swaps through all three). The watchdog
# turns a deadlocked drain/backpressure wait into a goroutine dump instead
# of a hung CI job.
race:
	$(GO) test -race -timeout 300s ./internal/executor/... ./internal/compress/... ./internal/metrics/... \
		./internal/placement/... ./internal/sched/... ./internal/server/... ./internal/tier/... \
		./internal/wire/... ./client/...

race-all:
	$(GO) test -race -timeout 600s ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure as benchmark metrics, captured as
# machine-readable test2json events in BENCH_metrics.json.
bench:
	$(GO) test -bench=. -benchmem -json -run='^$$' ./... > BENCH_metrics.json
	@grep -c '"Action":"output"' BENCH_metrics.json >/dev/null && echo "wrote BENCH_metrics.json"

# Codec hot-path benchmarks -> machine-readable BENCH_compress.json
# baseline (committed; cmd/cswap-benchdiff strips the -GOMAXPROCS suffix so
# the file diffs across machines). Regenerate whenever internal/compress
# gains or loses code: the tight decode loops are sensitive to function
# placement (a new function can shift a hot loop onto an unlucky address
# for ~2x ns/op with identical machine code), so ns/op is only comparable
# between binaries with the same layout. allocs/op is layout-immune.
bench-compress:
	$(GO) test -bench='BenchmarkCodec|BenchmarkParallelContainer|BenchmarkSwapHotPath|BenchmarkServerRoundTrip|BenchmarkBatchSwap' -benchmem -count=3 -run='^$$' \
		./internal/compress/ ./internal/executor/ ./internal/server/ \
		| $(GO) run ./cmd/cswap-benchdiff -write BENCH_compress.json

# Allocation-regression gate: rerun the codec benchmarks and fail on >10%
# ns/op or ANY allocs/op regression against the committed baseline. The
# server round trip and the batch head-to-head cross the HTTP stack and
# the scheduler, so they get the lenient band (5x ns/op threshold, 10%
# allocs/op) instead of the strict codec-loop rules.
bench-diff:
	$(GO) test -bench='BenchmarkCodec|BenchmarkParallelContainer|BenchmarkSwapHotPath|BenchmarkServerRoundTrip|BenchmarkBatchSwap' -benchmem -count=3 -run='^$$' \
		./internal/compress/ ./internal/executor/ ./internal/server/ \
		| $(GO) run ./cmd/cswap-benchdiff -baseline BENCH_compress.json -lenient 'ServerRoundTrip|BatchSwap'

# Umbrella gate: everything a change must pass before it lands — build,
# vet+test, the race detector over the swap path, the allocation-
# regression gate against the committed benchmark baseline, and the
# daemon smoke test.
check: build test race bench-diff serve-smoke tune-smoke cluster-smoke kv-smoke tier-smoke slo-smoke

# Serve-smoke: boot the real cswapd daemon on an ephemeral port, drive it
# with the example client, assert the swap counters moved via /metrics,
# then SIGTERM it and require a clean drained exit.
serve-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/cswapd" ./cmd/cswapd || exit 1; \
	"$$tmp/cswapd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -device 256 -host 1024 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "serve-smoke: daemon never wrote its address"; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	$(GO) run ./examples/swap-server -connect "http://$$addr" -smoke || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid && wait $$pid && echo "serve-smoke: clean drained exit"

# Tune-smoke: boot cswapd with the online tuner on, drive a drifting-
# sparsity workload through the Auto selector, and assert the tuner's
# codec-switch counter moved. The tuner knobs mirror the e2e test: a small
# grid so Huffman's per-chunk code table amortizes on smoke-sized tensors,
# a glacial modeled link so ratio dominates kernel noise, fast ticks and a
# two-swap evidence budget so the smoke completes in seconds.
tune-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/cswapd" ./cmd/cswapd || exit 1; \
	"$$tmp/cswapd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -device 256 -host 1024 \
		-grid 4 -block 64 -tune -tune-interval 50ms -tune-link 131072 \
		-tune-min-swaps 2 -tune-probe 16384 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "tune-smoke: daemon never wrote its address"; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	$(GO) run ./examples/swap-server -connect "http://$$addr" -drift || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid && wait $$pid && echo "tune-smoke: clean drained exit"

# Cluster-smoke: boot cswapd as a 3-shard cluster on an ephemeral port,
# drive it with the cluster-aware example client (keys spread across every
# shard, live drain of shard 1, bit-exact restores, per-shard /metrics
# assertions), then SIGTERM it and require a clean drained exit.
cluster-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/cswapd" ./cmd/cswapd || exit 1; \
	"$$tmp/cswapd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -shards 3 -device 256 -host 1024 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "cluster-smoke: daemon never wrote its address"; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	$(GO) run ./examples/swap-server -connect "http://$$addr" -cluster || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid && wait $$pid && echo "cluster-smoke: clean drained exit"

# KV-smoke: boot cswapd on an ephemeral port and drive the batch block
# API with the example's paged KV-cache decode loop: pool registration,
# per-step batch swap-outs/swap-ins verified bit-exact, the 64-single vs
# one-64-block head-to-head (<25% wall time), and /metrics assertions on
# the batch counters and the coalescing-ratio histogram, then SIGTERM and
# require a clean drained exit.
kv-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/cswapd" ./cmd/cswapd || exit 1; \
	"$$tmp/cswapd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -device 256 -host 1024 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "kv-smoke: daemon never wrote its address"; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	$(GO) run ./examples/swap-server -connect "http://$$addr" -kv || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid && wait $$pid && echo "kv-smoke: clean drained exit"

# Tier-smoke: boot cswapd with a deliberately tiny pinned-host pool and a
# disk spill tier, drive the overflow workload (every swap-out must
# complete by demoting cold blobs, /metrics must show
# executor_tier_demotions_total > 0 and zero quota rejections, every
# restore bit-exact through the promote path), SIGTERM it and require a
# clean drained exit — then boot a second daemon on the SAME tier
# directory and repeat, proving the directory survives a restart.
tier-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/cswapd" ./cmd/cswapd || exit 1; \
	for leg in first restart; do \
		rm -f "$$tmp/addr"; \
		"$$tmp/cswapd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -device 256 -host 1 -tier-dir "$$tmp/tier" & pid=$$!; \
		for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
		[ -s "$$tmp/addr" ] || { echo "tier-smoke: daemon never wrote its address ($$leg leg)"; kill $$pid 2>/dev/null; exit 1; }; \
		addr=$$(cat "$$tmp/addr"); \
		$(GO) run ./examples/swap-server -connect "http://$$addr" -pressure || { kill $$pid 2>/dev/null; exit 1; }; \
		kill -TERM $$pid && wait $$pid || exit 1; \
		echo "tier-smoke: clean drained exit ($$leg leg)"; \
	done

# SLO-smoke: boot cswapd with the admission scheduler on and a small
# in-flight window so the lanes actually queue, drive the example's
# speculative-flood-plus-critical-train workload, and assert via /metrics
# that both lanes admitted work and the critical lane expired nothing —
# then SIGTERM and require a clean drained exit.
slo-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/cswapd" ./cmd/cswapd || exit 1; \
	"$$tmp/cswapd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -device 256 -host 1024 \
		-max-inflight 2 -sched & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/addr" ] || { echo "slo-smoke: daemon never wrote its address"; kill $$pid 2>/dev/null; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	$(GO) run ./examples/swap-server -connect "http://$$addr" -slo || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid && wait $$pid && echo "slo-smoke: clean drained exit"

# Full evaluation -> REPORT.md (and CSV series under data/).
report:
	$(GO) run ./cmd/cswap-report -o REPORT.md

csv:
	$(GO) run ./cmd/cswap-report -o REPORT.md -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tune-compression
	$(GO) run ./examples/framework-comparison
	$(GO) run ./examples/real-swap
	$(GO) run ./examples/vgg16-imagenet
	$(GO) run ./examples/swap-server

clean:
	rm -f test_output.txt bench_output.txt BENCH_metrics.json
	rm -rf data
