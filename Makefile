# CSWAP build and evaluation targets.

GO ?= go

.PHONY: all build vet test race race-all cover bench report csv examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-check the swapping data path (the concurrent hot path).
race:
	$(GO) test -race ./internal/executor/... ./internal/compress/...

race-all:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem ./...

# Full evaluation -> REPORT.md (and CSV series under data/).
report:
	$(GO) run ./cmd/cswap-report -o REPORT.md

csv:
	$(GO) run ./cmd/cswap-report -o REPORT.md -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tune-compression
	$(GO) run ./examples/framework-comparison
	$(GO) run ./examples/real-swap
	$(GO) run ./examples/vgg16-imagenet

clean:
	rm -f test_output.txt bench_output.txt
	rm -rf data
