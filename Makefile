# CSWAP build and evaluation targets.

GO ?= go

.PHONY: all build test race cover bench report csv examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure as benchmark metrics.
bench:
	$(GO) test -bench=. -benchmem ./...

# Full evaluation -> REPORT.md (and CSV series under data/).
report:
	$(GO) run ./cmd/cswap-report -o REPORT.md

csv:
	$(GO) run ./cmd/cswap-report -o REPORT.md -csv data

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tune-compression
	$(GO) run ./examples/framework-comparison
	$(GO) run ./examples/real-swap
	$(GO) run ./examples/vgg16-imagenet

clean:
	rm -f test_output.txt bench_output.txt
	rm -rf data
